#include <gtest/gtest.h>

#include "vm/walker.hh"

namespace tempo {
namespace {

struct WalkerFixture : public ::testing::Test {
    OsMemory os{OsMemoryConfig{}};
    PageTable table{os};
    MmuCache mmu{MmuCacheConfig{}};
    Translator translator{table};
    Walker walker{translator, mmu};

    void
    map4K(Addr vaddr)
    {
        table.map(alignDown(vaddr, kPageBytes), PageSize::Page4K,
                  os.allocFrame(PageSize::Page4K));
    }
};

TEST_F(WalkerFixture, ColdWalkFetchesAllFourLevels)
{
    map4K(0x1234000);
    const WalkPlan plan = walker.plan(0x1234000);
    ASSERT_TRUE(plan.xlate.valid);
    EXPECT_EQ(plan.fetches.size(), 4u);
}

TEST_F(WalkerFixture, SecondWalkSkipsCachedLevels)
{
    map4K(0x1234000);
    const WalkPlan first = walker.plan(0x1234000);
    walker.finish(0x1234000, first);
    // The L4/L3/L2 entries are now in the MMU caches; only the leaf
    // remains.
    const WalkPlan second = walker.plan(0x1234000);
    ASSERT_EQ(second.fetches.size(), 1u);
    EXPECT_EQ(second.fetches[0].level, 1);
}

TEST_F(WalkerFixture, LeafIsAlwaysFetched)
{
    // The TLB caches leaf translations, not the MMU caches: every walk
    // must fetch at least the leaf PTE.
    map4K(0x1234000);
    for (int i = 0; i < 5; ++i) {
        const WalkPlan plan = walker.plan(0x1234000);
        EXPECT_GE(plan.fetches.size(), 1u);
        EXPECT_EQ(plan.fetches.back().level, 1);
        walker.finish(0x1234000, plan);
    }
}

TEST_F(WalkerFixture, NeighbouringPagesShareUpperLevels)
{
    map4K(0x1234000);
    map4K(0x1235000);
    const WalkPlan first = walker.plan(0x1234000);
    walker.finish(0x1234000, first);
    // Same 2MB region: all upper levels cached.
    const WalkPlan second = walker.plan(0x1235000);
    EXPECT_EQ(second.fetches.size(), 1u);
}

TEST_F(WalkerFixture, DistantPageSharesNothing)
{
    map4K(0x1234000);
    const WalkPlan first = walker.plan(0x1234000);
    walker.finish(0x1234000, first);
    const Addr far = Addr{7} << 39;
    table.map(far, PageSize::Page4K, os.allocFrame(PageSize::Page4K));
    const WalkPlan second = walker.plan(far);
    EXPECT_EQ(second.fetches.size(), 4u);
}

TEST_F(WalkerFixture, TwoMegWalkEndsAtLevel2)
{
    table.map(0x40000000, PageSize::Page2M,
              os.allocFrame(PageSize::Page2M));
    const WalkPlan plan = walker.plan(0x40000000);
    ASSERT_TRUE(plan.xlate.valid);
    EXPECT_EQ(plan.fetches.back().level, 2);
    EXPECT_EQ(plan.xlate.size, PageSize::Page2M);
}

TEST_F(WalkerFixture, TwoMegLeafNotCachedInMmu)
{
    table.map(0x40000000, PageSize::Page2M,
              os.allocFrame(PageSize::Page2M));
    const WalkPlan first = walker.plan(0x40000000);
    walker.finish(0x40000000, first);
    // L4/L3 cached, but the L2 *leaf* must not be: the next walk still
    // fetches it.
    const WalkPlan second = walker.plan(0x40000000);
    ASSERT_EQ(second.fetches.size(), 1u);
    EXPECT_EQ(second.fetches[0].level, 2);
}

TEST_F(WalkerFixture, FaultingWalkHasInvalidTranslation)
{
    map4K(0x0);
    const WalkPlan plan = walker.plan(Addr{1} << 30);
    EXPECT_FALSE(plan.xlate.valid);
    EXPECT_GE(plan.fetches.size(), 1u);
}

TEST_F(WalkerFixture, FinishDoesNotCacheFaultingLevels)
{
    map4K(0x0);
    const Addr bad = Addr{1} << 30; // L4 present, L3 absent
    const WalkPlan plan = walker.plan(bad);
    walker.finish(bad, plan);
    // Only the L4 entry (fetched and present) may be cached; a re-plan
    // still needs the L3 fetch.
    const WalkPlan replan = walker.plan(bad);
    EXPECT_FALSE(replan.xlate.valid);
    EXPECT_EQ(replan.fetches.back().level, 3);
}

TEST_F(WalkerFixture, ResumesBelowDeepestCachedLevel)
{
    // Only the upper two levels are cached (deepestCached == 3): the
    // walk resumes at L2 and fetches exactly L2 and the leaf.
    map4K(0x1234000);
    mmu.fill(0x1234000, 4);
    mmu.fill(0x1234000, 3);
    ASSERT_EQ(mmu.deepestCached(0x1234000), 3);
    const WalkPlan plan = walker.plan(0x1234000);
    ASSERT_EQ(plan.fetches.size(), 2u);
    EXPECT_EQ(plan.fetches[0].level, 2);
    EXPECT_EQ(plan.fetches[1].level, 1);
}

TEST_F(WalkerFixture, OnlyLeafFetchedWhenL2Cached)
{
    // deepestCached == 2 is the deepest the MMU caches can help: only
    // the leaf PTE remains, and finishing such a single-fetch plan
    // must not cache anything new (the leaf never enters the MMU
    // caches).
    map4K(0x1234000);
    mmu.fill(0x1234000, 4);
    mmu.fill(0x1234000, 3);
    mmu.fill(0x1234000, 2);
    ASSERT_EQ(mmu.deepestCached(0x1234000), 2);
    const WalkPlan plan = walker.plan(0x1234000);
    ASSERT_EQ(plan.fetches.size(), 1u);
    EXPECT_EQ(plan.fetches[0].level, 1);
    walker.finish(0x1234000, plan);
    EXPECT_EQ(mmu.deepestCached(0x1234000), 2);
}

TEST_F(WalkerFixture, OneGigWalkEndsAtLevel3)
{
    const Addr va = Addr{1} << 30;
    table.map(va, PageSize::Page1G, os.allocFrame(PageSize::Page1G));
    const WalkPlan first = walker.plan(va);
    ASSERT_TRUE(first.xlate.valid);
    ASSERT_EQ(first.fetches.size(), 2u);
    EXPECT_EQ(first.fetches.back().level, 3);
    EXPECT_EQ(first.xlate.size, PageSize::Page1G);
    // finish() fills only the L4 entry; the L3 *leaf* stays uncached,
    // so the next walk still fetches exactly it.
    walker.finish(va, first);
    const WalkPlan second = walker.plan(va);
    ASSERT_EQ(second.fetches.size(), 1u);
    EXPECT_EQ(second.fetches[0].level, 3);
}

TEST_F(WalkerFixture, FinishNeverCachesLeafLevel)
{
    // finish() fills upper levels (2-4) only. A crafted plan whose
    // non-last fetch sits at the leaf level must leave the MMU caches
    // untouched — level 1 is below the fill boundary.
    map4K(0x1234000);
    const WalkPlan full = walker.plan(0x1234000);
    ASSERT_EQ(full.fetches.size(), 4u);
    WalkPlan crafted;
    crafted.xlate = full.xlate;
    crafted.fetches = {full.fetches[3], full.fetches[3]};
    walker.finish(0x1234000, crafted);
    EXPECT_EQ(mmu.deepestCached(0x1234000), 5); // still cold
}

TEST_F(WalkerFixture, StatsCountWalksAndRefs)
{
    map4K(0x1234000);
    const WalkPlan plan = walker.plan(0x1234000);
    walker.finish(0x1234000, plan);
    walker.plan(0x1234000);
    EXPECT_EQ(walker.walks(), 2u);
    EXPECT_EQ(walker.ptRefsIssued(), 5u);  // 4 + 1
    EXPECT_EQ(walker.ptRefsSkipped(), 3u); // second walk skips 3
}

// The memoized translator must be invisible at the counter level: two
// walkers over identically mapped tables — one planning through the
// memo, one through the reference path — produce the same fetch plans,
// the same MMU-cache probe outcomes, and the same walker statistics
// for an arbitrary interleaved plan/finish/mutate sequence.
TEST(WalkerNeutrality, MemoAndReferenceWalkersAgree)
{
    struct Rig {
        OsMemory os{OsMemoryConfig{}};
        PageTable table{os};
        MmuCache mmu{MmuCacheConfig{}};
        Translator translator;
        Walker walker{translator, mmu};

        explicit Rig(bool reference)
            : translator(table, [&] {
                  TranslatorConfig cfg;
                  cfg.useReferenceTranslator = reference;
                  return cfg;
              }())
        {
        }
    };
    Rig memo(false);
    Rig ref(true);
    ASSERT_FALSE(memo.translator.usingReference());
    ASSERT_TRUE(ref.translator.usingReference());

    // Identical mutation + walk schedule on both rigs. Frame addresses
    // match because both OsMemory allocators see the same request
    // sequence.
    const auto onBoth = [&](auto &&step) {
        step(memo);
        step(ref);
    };
    const Addr kVas[] = {0x1234000, 0x1235000, 0x40000000,
                         Addr{2} << 30, Addr{7} << 39};
    onBoth([&](Rig &r) {
        r.table.map(0x1234000, PageSize::Page4K,
                    r.os.allocFrame(PageSize::Page4K));
        r.table.map(0x1235000, PageSize::Page4K,
                    r.os.allocFrame(PageSize::Page4K));
        r.table.map(0x40000000, PageSize::Page2M,
                    r.os.allocFrame(PageSize::Page2M));
        r.table.map(Addr{2} << 30, PageSize::Page1G,
                    r.os.allocFrame(PageSize::Page1G));
    });

    for (int round = 0; round < 6; ++round) {
        for (const Addr va : kVas) {
            const WalkPlan a = memo.walker.plan(va);
            const WalkPlan b = ref.walker.plan(va);
            EXPECT_EQ(a.xlate.valid, b.xlate.valid) << va;
            ASSERT_EQ(a.fetches.size(), b.fetches.size()) << va;
            for (std::size_t i = 0; i < a.fetches.size(); ++i) {
                EXPECT_EQ(a.fetches[i].level, b.fetches[i].level);
                EXPECT_EQ(a.fetches[i].pteAddr, b.fetches[i].pteAddr);
            }
            if (round % 2 == 0) {
                memo.walker.finish(va, a);
                ref.walker.finish(va, b);
            }
        }
        // Mid-sequence mutations: the memo must re-plan from the new
        // table state, with the same MMU-cache interaction.
        if (round == 2) {
            onBoth([&](Rig &r) {
                r.table.unmap(0x1234000);
                r.table.map(0x1234000, PageSize::Page4K,
                            r.os.allocFrame(PageSize::Page4K));
                r.table.promote(0x1200000, PageSize::Page2M,
                                r.os.allocFrame(PageSize::Page2M));
                // Promotion moves a leaf up into a level the MMU
                // caches hold: flush them, as a real shootdown would.
                r.mmu.reset();
            });
        }
    }

    EXPECT_EQ(memo.walker.walks(), ref.walker.walks());
    EXPECT_EQ(memo.walker.ptRefsIssued(), ref.walker.ptRefsIssued());
    EXPECT_EQ(memo.walker.ptRefsSkipped(), ref.walker.ptRefsSkipped());
    EXPECT_EQ(memo.mmu.hits(), ref.mmu.hits());
    EXPECT_EQ(memo.mmu.misses(), ref.mmu.misses());
    EXPECT_GT(memo.translator.walkHits(), 0u); // memo actually engaged
}

} // namespace
} // namespace tempo
