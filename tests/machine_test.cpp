#include <gtest/gtest.h>

#include "core/machine.hh"

namespace tempo {
namespace {

TEST(Machine, ConstructsFromConfig)
{
    Machine machine(SystemConfig::skylakeScaled());
    EXPECT_EQ(machine.mcRequests(), 0u);
    EXPECT_EQ(machine.eq.now(), 0u);
}

TEST(Machine, SubmitWritebackIsServedAsWriteback)
{
    Machine machine(SystemConfig::skylakeScaled());
    machine.submitWriteback(0x12345, 3);
    machine.eq.runAll();
    EXPECT_EQ(machine.mc.served(ReqKind::Writeback), 1u);
    EXPECT_EQ(machine.mcRequests(), 1u);
}

TEST(Machine, TempoPrefetchFillLandsInSharedLlc)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    cfg.withTempo(true);
    Machine machine(cfg);

    MemRequest req;
    req.paddr = 0x8000;
    req.kind = ReqKind::PtWalk;
    req.tempo.tagged = true;
    req.tempo.pteValid = true;
    req.tempo.replayPaddr = 0x777000;
    machine.mc.submit(std::move(req));
    machine.eq.runAll();

    EXPECT_TRUE(machine.llc.cache().contains(lineAddr(Addr{0x777000})));
    EXPECT_EQ(machine.llc.prefetchFills(), 1u);
}

TEST(Machine, PrefetchFillEvictionWritesBack)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    cfg.withTempo(true);
    cfg.caches.llc = {4096, 1, 42}; // tiny direct-mapped LLC
    Machine machine(cfg);

    // Dirty a line in the LLC, then have a TEMPO prefetch evict it.
    machine.llc.cache().insertTracked(0x0, /*dirty=*/true);
    MemRequest req;
    req.paddr = 0x8000;
    req.kind = ReqKind::PtWalk;
    req.tempo.tagged = true;
    req.tempo.pteValid = true;
    req.tempo.replayPaddr = 0x1000; // same LLC set as 0x0
    machine.mc.submit(std::move(req));
    machine.eq.runAll();

    EXPECT_EQ(machine.mc.served(ReqKind::Writeback), 1u);
}

TEST(Machine, McRequestsSumsAllKinds)
{
    Machine machine(SystemConfig::skylakeScaled());
    for (ReqKind kind : {ReqKind::Regular, ReqKind::Replay,
                         ReqKind::PtWalk, ReqKind::ImpPrefetch}) {
        MemRequest req;
        req.paddr = static_cast<Addr>(kind) << 16;
        req.kind = kind;
        machine.mc.submit(std::move(req));
    }
    machine.eq.runAll();
    EXPECT_EQ(machine.mcRequests(), 4u);
}

} // namespace
} // namespace tempo
