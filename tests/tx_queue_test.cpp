#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mc/bliss.hh"
#include "mc/reference_scheduler.hh"
#include "mc/tx_queue.hh"

namespace tempo {
namespace {

QueuedRequest
makeEntry(Addr paddr, ReqKind kind, AppId app, Cycle arrival,
          std::uint64_t seq, bool tagged = false)
{
    QueuedRequest entry;
    entry.req.paddr = paddr;
    entry.req.kind = kind;
    entry.req.app = app;
    entry.req.isWrite = kind == ReqKind::Writeback;
    entry.req.tempo.tagged = tagged;
    entry.arrival = arrival;
    entry.seq = seq;
    return entry;
}

/** Random request stream shared by the differential drivers. */
struct StreamGen {
    Rng rng;
    std::uint64_t seq = 0;
    Cycle now = 0;

    explicit StreamGen(std::uint64_t seed) : rng(seed) {}

    QueuedRequest
    next()
    {
        // Rows 0-15 over all banks/channels of the default geometry:
        // dense enough for frequent row hits and conflicts.
        const Addr paddr = rng.next() & ((1u << 20) - 1) & ~0x3full;
        const std::uint64_t roll = rng.below(100);
        ReqKind kind = ReqKind::Regular;
        bool tagged = false;
        if (roll < 20) {
            kind = ReqKind::PtWalk;
            tagged = rng.chance(0.5);
        } else if (roll < 35) {
            kind = ReqKind::TempoPrefetch;
        } else if (roll < 45) {
            kind = ReqKind::Writeback;
        }
        return makeEntry(paddr, kind, static_cast<AppId>(rng.below(4)),
                         now, seq++, tagged);
    }
};

/**
 * Drive an indexed and a reference scheduler over one shared queue and
 * device: every pick must agree, and the occupancy counter must match a
 * full recount, at every step.
 */
void
runDifferential(const DramConfig &dram_cfg, const SchedulerConfig &cfg,
                bool bliss, std::uint64_t seed, int steps)
{
    DramDevice dram(dram_cfg);
    TxQueue txq(dram);
    std::unique_ptr<Scheduler> indexed;
    std::unique_ptr<Scheduler> ref;
    BlissScheduler *indexed_bliss = nullptr;
    BlissScheduler *ref_bliss = nullptr;
    if (bliss) {
        auto a = std::make_unique<BlissScheduler>(cfg);
        auto b = std::make_unique<RefBlissScheduler>(cfg);
        indexed_bliss = a.get();
        ref_bliss = b.get();
        indexed = std::move(a);
        ref = std::move(b);
    } else {
        indexed = std::make_unique<FrFcfsScheduler>(cfg);
        ref = std::make_unique<RefFrFcfsScheduler>(cfg);
    }

    StreamGen gen(seed);
    for (int i = 0; i < steps; ++i) {
        gen.now += gen.rng.below(30);
        if (txq.totalSize() == 0 || gen.rng.chance(0.55)) {
            txq.enqueue(gen.next());
        } else {
            unsigned ch =
                static_cast<unsigned>(gen.rng.below(txq.channels()));
            while (txq.empty(ch))
                ch = (ch + 1) % txq.channels();
            const std::uint32_t a =
                indexed->pick(txq, ch, dram, gen.now);
            const std::uint32_t b = ref->pick(txq, ch, dram, gen.now);
            ASSERT_EQ(a, b) << "divergent pick at step " << i;
            txq.remove(a);
            const QueuedRequest &entry = txq.entry(a);
            dram.access(entry.req.paddr, entry.req.isWrite,
                        entry.req.kind == ReqKind::TempoPrefetch,
                        entry.req.app, gen.now,
                        gen.rng.chance(0.2) ? 10 : 0);
            if (bliss) {
                indexed_bliss->served(entry, gen.now);
                ref_bliss->served(entry, gen.now);
                ASSERT_EQ(indexed_bliss->blacklistEvents(),
                          ref_bliss->blacklistEvents());
            }
            txq.release(a);
        }
        ASSERT_EQ(txq.totalOccupancy(), txq.bruteForceOccupancy())
            << "occupancy drift at step " << i;
    }
}

TEST(TxQueueTest, OccupancyCounterMatchesBruteForce)
{
    DramConfig dram_cfg;
    DramDevice dram(dram_cfg);
    TxQueue txq(dram);
    Rng rng(7);
    std::uint64_t seq = 0;
    std::vector<std::uint32_t> queued;
    for (int i = 0; i < 2000; ++i) {
        if (queued.empty() || rng.chance(0.6)) {
            const Addr paddr = rng.next() & ((1u << 20) - 1) & ~0x3full;
            const bool tagged = rng.chance(0.3);
            queued.push_back(txq.enqueue(makeEntry(
                paddr, tagged ? ReqKind::PtWalk : ReqKind::Regular, 0,
                0, seq++, tagged)));
        } else {
            const std::size_t victim = rng.below(queued.size());
            const std::uint32_t id = queued[victim];
            queued[victim] = queued.back();
            queued.pop_back();
            txq.remove(id);
            txq.release(id);
        }
        ASSERT_EQ(txq.totalOccupancy(), txq.bruteForceOccupancy());
        std::size_t per_channel = 0;
        for (unsigned ch = 0; ch < txq.channels(); ++ch)
            per_channel += txq.occupancy(ch);
        ASSERT_EQ(per_channel, txq.totalOccupancy());
    }
    EXPECT_GT(txq.totalOccupancy(), 0u);
}

TEST(TxQueueTest, SlotsAreReusedAfterRelease)
{
    DramConfig dram_cfg;
    DramDevice dram(dram_cfg);
    TxQueue txq(dram);
    const std::uint32_t a =
        txq.enqueue(makeEntry(0x40, ReqKind::Regular, 1, 0, 0));
    txq.remove(a);
    const QueuedRequest taken = txq.take(a);
    EXPECT_EQ(taken.req.paddr, 0x40u);
    EXPECT_EQ(taken.req.app, 1u);
    // The freed slot is recycled before the arena grows.
    const std::uint32_t b =
        txq.enqueue(makeEntry(0x80, ReqKind::Regular, 2, 0, 1));
    EXPECT_EQ(b, a);
    EXPECT_EQ(txq.entry(b).req.app, 2u);
}

TEST(TxQueueTest, SnapshotsRowsOpenedBeforeConstruction)
{
    DramConfig dram_cfg;
    dram_cfg.channels = 1;
    dram_cfg.rowPolicy = RowPolicyKind::Open;
    DramDevice dram(dram_cfg);
    // Row opened before any TxQueue exists...
    dram.access(0x10000, false, false, 0, 0, 0);
    TxQueue txq(dram);
    txq.enqueue(makeEntry(0x900000, ReqKind::Regular, 0, 0, 0));
    const std::uint32_t hit =
        txq.enqueue(makeEntry(0x10040, ReqKind::Regular, 0, 0, 1));
    // ...must still be visible to the candidate index as a row hit.
    SchedulerConfig cfg;
    FrFcfsScheduler sched(cfg);
    EXPECT_EQ(sched.pick(txq, 0, dram, 1000), hit);
}

TEST(TxQueueTest, DifferentialFrFcfsDefaultConfig)
{
    DramConfig dram_cfg;
    dram_cfg.rowPolicy = RowPolicyKind::Open;
    SchedulerConfig cfg;
    cfg.tempoGrouping = true;
    runDifferential(dram_cfg, cfg, /*bliss=*/false, 0x1234, 6000);
}

TEST(TxQueueTest, DifferentialFrFcfsTightStarvation)
{
    DramConfig dram_cfg;
    dram_cfg.rowPolicy = RowPolicyKind::Open;
    SchedulerConfig cfg;
    cfg.tempoGrouping = true;
    cfg.starvationLimit = 150; // exercise the class-15 override often
    runDifferential(dram_cfg, cfg, /*bliss=*/false, 0x5678, 6000);
}

TEST(TxQueueTest, DifferentialFrFcfsAdaptivePolicyNoGrouping)
{
    DramConfig dram_cfg;
    dram_cfg.rowPolicy = RowPolicyKind::Adaptive;
    SchedulerConfig cfg;
    cfg.tempoGrouping = false;
    runDifferential(dram_cfg, cfg, /*bliss=*/false, 0x9abc, 6000);
}

TEST(TxQueueTest, DifferentialFrFcfsSubRowBuffers)
{
    DramConfig dram_cfg;
    dram_cfg.rowPolicy = RowPolicyKind::Open;
    dram_cfg.subRowAlloc = SubRowAlloc::FOA;
    dram_cfg.subRowCount = 4;
    dram_cfg.subRowsForPrefetch = 1;
    SchedulerConfig cfg;
    cfg.tempoGrouping = true;
    runDifferential(dram_cfg, cfg, /*bliss=*/false, 0xdef0, 6000);
}

TEST(TxQueueTest, DifferentialFrFcfsSingleChannelClosedPolicy)
{
    DramConfig dram_cfg;
    dram_cfg.channels = 1;
    dram_cfg.rowPolicy = RowPolicyKind::Closed;
    SchedulerConfig cfg;
    cfg.tempoGrouping = true;
    runDifferential(dram_cfg, cfg, /*bliss=*/false, 0x1357, 6000);
}

TEST(TxQueueTest, DifferentialBliss)
{
    DramConfig dram_cfg;
    dram_cfg.rowPolicy = RowPolicyKind::Open;
    SchedulerConfig cfg;
    cfg.tempoGrouping = true;
    cfg.blissThreshold = 6;
    cfg.blissClearInterval = 2000;
    cfg.blissTempoAffinity = true;
    runDifferential(dram_cfg, cfg, /*bliss=*/true, 0x2468, 6000);
}

TEST(TxQueueTest, DifferentialBlissTightThreshold)
{
    DramConfig dram_cfg;
    dram_cfg.rowPolicy = RowPolicyKind::Open;
    dram_cfg.channels = 1;
    SchedulerConfig cfg;
    cfg.tempoGrouping = true;
    cfg.blissThreshold = 3;
    cfg.blissClearInterval = 500;
    cfg.blissTempoAffinity = true;
    cfg.starvationLimit = 200;
    runDifferential(dram_cfg, cfg, /*bliss=*/true, 0xaaaa, 6000);
}

} // namespace
} // namespace tempo
