/**
 * @file
 * Sweep fabric tests: claim exclusivity under racing contenders, stale
 * detection and reclaim, the streaming shard scanner's handling of a
 * truncated tail, snapshot JSON round-trips and the counting
 * invariant, the embedded HTTP server, and the headline property — a
 * multi-worker fabric sweep returns byte-identical results to a
 * single-process run, failures included.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/checkpoint.hh"
#include "core/experiment.hh"
#include "fabric/claim.hh"
#include "fabric/coordinator.hh"
#include "fabric/heartbeat.hh"
#include "fabric/http.hh"
#include "fabric/snapshot.hh"

namespace tempo {
namespace {

namespace fs = std::filesystem;
using fabric::ClaimDir;
using fabric::Heartbeat;
using fabric::ShardScanner;

constexpr std::uint64_t kRefs = 2000;

/** A scratch directory removed on scope exit. */
struct TempDir {
    std::string path;
    explicit TempDir(const std::string &name)
        : path("fabric_test_" + name)
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir()
    {
        std::error_code ignore;
        fs::remove_all(path, ignore);
    }
};

std::vector<ExperimentPoint>
sweepPoints()
{
    std::vector<ExperimentPoint> points;
    for (const char *name : {"mcf", "xsbench", "canneal", "spmv"}) {
        ExperimentPoint p;
        p.workload = name;
        p.config = SystemConfig::skylakeScaled();
        p.refs = kRefs;
        points.push_back(std::move(p));
    }
    return points;
}

/** Flatten results to the full tempo-bench-1 document for byte
 * comparisons (status, failures array and all). */
std::string
emitJson(const std::vector<RunResult> &results)
{
    std::vector<stats::BenchPoint> points;
    for (std::size_t i = 0; i < results.size(); ++i)
        points.push_back(
            toBenchPoint("p" + std::to_string(i), {}, results[i]));
    return stats::benchJson("fabric", kRefs, 42, points).dump();
}

TEST(FabricClaim, ExactlyOneRacingContenderWins)
{
    TempDir dir("claim_race");
    constexpr int kContenders = 8;
    std::atomic<int> winners{0};
    std::vector<std::thread> threads;
    std::vector<ClaimDir> claims;
    claims.reserve(kContenders);
    for (int i = 0; i < kContenders; ++i)
        claims.emplace_back(dir.path, "w" + std::to_string(i));
    for (int i = 0; i < kContenders; ++i)
        threads.emplace_back([&, i] {
            if (claims[i].tryClaim(0xfeedu))
                ++winners;
        });
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(winners.load(), 1);
    // The claim file names exactly one of the contenders.
    const std::string owner = claims[0].owner(0xfeedu);
    EXPECT_EQ(owner.rfind('w', 0), 0u);
    // Erase + re-contest: claimable again, by anyone.
    claims[0].remove(0xfeedu);
    EXPECT_TRUE(claims[3].tryClaim(0xfeedu));
    EXPECT_EQ(claims[0].owner(0xfeedu), "w3");
}

TEST(FabricClaim, DigestHexRoundTrips)
{
    EXPECT_EQ(fabric::digestHex(0xdeadbeefu), "00000000deadbeef");
    EXPECT_EQ(fabric::parseDigestHex("00000000deadbeef"), 0xdeadbeefu);
    EXPECT_THROW(fabric::parseDigestHex("xyz"), std::runtime_error);
}

TEST(FabricHeartbeat, StalenessIsFileAge)
{
    TempDir dir("heartbeat");
    {
        Heartbeat hb(dir.path, "w0", 0.05);
        EXPECT_LT(Heartbeat::ageSec(dir.path, "w0"), 5.0);
        const auto workers = Heartbeat::listWorkers(dir.path);
        ASSERT_EQ(workers.size(), 1u);
        EXPECT_EQ(workers[0], "w0");
    }
    // Worker gone: age the heartbeat file artificially and observe the
    // stale verdict any reclaiming worker would reach.
    const std::string path = Heartbeat::path(dir.path, "w0");
    fs::last_write_time(path, fs::last_write_time(path) -
                                  std::chrono::seconds(3600));
    EXPECT_GT(Heartbeat::ageSec(dir.path, "w0"), 30.0);
    // A worker that never wrote a heartbeat reads +infinity.
    EXPECT_EQ(Heartbeat::ageSec(dir.path, "ghost"),
              std::numeric_limits<double>::infinity());
}

TEST(FabricScanner, ConsumesOnlyCompleteLines)
{
    TempDir dir("scanner");
    const RunResult result =
        runWorkload(SystemConfig::skylakeScaled(), "mcf", kRefs);
    const std::string lineA = encodeJournalLine(0xa, result);
    const std::string lineB = encodeJournalLine(0xb, result);
    const std::string lineC = encodeJournalLine(0xc, result);
    const std::string shard = dir.path + "/shard_w0.jsonl";
    {
        std::ofstream out(shard, std::ios::binary);
        out << lineA << '\n' << lineB << '\n'
            << lineC.substr(0, lineC.size() / 2); // torn tail
    }
    ShardScanner scanner(dir.path);
    scanner.poll();
    EXPECT_EQ(scanner.done().size(), 2u);
    EXPECT_TRUE(scanner.done().count(0xa));
    EXPECT_TRUE(scanner.done().count(0xb));
    // The tail completes (the writer finished its append): the next
    // poll picks up exactly the new record.
    {
        std::ofstream out(shard, std::ios::binary | std::ios::app);
        out << lineC.substr(lineC.size() / 2) << '\n';
    }
    EXPECT_EQ(scanner.poll(), 1u);
    EXPECT_TRUE(scanner.done().count(0xc));
    // First record for a digest wins; duplicates are ignored.
    {
        std::ofstream out(dir.path + "/shard_w1.jsonl",
                          std::ios::binary);
        out << lineA << '\n';
    }
    EXPECT_EQ(scanner.poll(), 0u);
    EXPECT_EQ(scanner.done().size(), 3u);
}

TEST(FabricManifest, MismatchedSweepIsRejected)
{
    TempDir dir("manifest");
    const std::vector<std::uint64_t> digests{1, 2, 3};
    fabric::writeManifest(dir.path, "sweep-a", digests);
    // Idempotent republish of the identical point list is fine.
    fabric::writeManifest(dir.path, "sweep-a", digests);
    fabric::Manifest manifest;
    ASSERT_TRUE(fabric::readManifest(dir.path, manifest));
    EXPECT_EQ(manifest.sweep, "sweep-a");
    EXPECT_EQ(manifest.digests, digests);
    // A different digest list in the same directory must throw.
    EXPECT_THROW(
        fabric::writeManifest(dir.path, "sweep-b", {7, 8, 9}),
        std::runtime_error);
}

TEST(FabricSnapshot, RoundTripsAndSumsExactly)
{
    // Local-mode snapshot: encode via the compact writer, decode via
    // the parser, re-emit via toJson — bytes must survive, and the
    // status counts must sum to the point total.
    fabric::SweepProgress progress;
    progress.configure("unit", 5, 0);
    RunResult ok;
    RunResult bad;
    bad.status.code = RunStatus::Code::Failed;
    bad.status.error = "injected";
    bad.status.digest = 0x77;
    progress.start(0);
    progress.done(0, ok, 0.1, true);
    progress.start(1);
    progress.done(1, bad, 0.1, true);
    progress.start(2); // still in flight

    const std::string text = progress.snapshotJson();
    const stats::JsonValue doc = stats::parseJson(text);
    EXPECT_EQ(doc.at("schema").asString(), "tempo-fabric-snapshot-1");
    const std::uint64_t points = doc.at("points").asUint64();
    EXPECT_EQ(doc.at("ok").asUint64() + doc.at("failed").asUint64() +
                  doc.at("timed_out").asUint64() +
                  doc.at("in_flight").asUint64() +
                  doc.at("pending").asUint64(),
              points);
    EXPECT_EQ(points, 5u);
    EXPECT_EQ(doc.at("ok").asUint64(), 1u);
    EXPECT_EQ(doc.at("failed").asUint64(), 1u);
    EXPECT_EQ(doc.at("in_flight").asUint64(), 1u);
    EXPECT_EQ(doc.at("pending").asUint64(), 2u);
    const stats::JsonValue &failures = doc.at("failures");
    ASSERT_EQ(failures.elements.size(), 1u);
    EXPECT_EQ(failures.elements[0].at("digest").asString(),
              "0000000000000077");
    // parse -> toJson -> re-emit reproduces the exact bytes.
    EXPECT_EQ(stats::toJson(doc).dump(), text);
}

TEST(FabricSnapshot, DirSnapshotCountsClaimsAndShards)
{
    TempDir dir("dirsnap");
    const RunResult result =
        runWorkload(SystemConfig::skylakeScaled(), "mcf", kRefs);
    const std::vector<std::uint64_t> digests{10, 11, 12, 13};
    fabric::writeManifest(dir.path, "dirsweep", digests);
    {
        std::ofstream out(dir.path + "/shard_w0.jsonl",
                          std::ios::binary);
        out << encodeJournalLine(10, result) << '\n';
        RunResult failed = RunResult{};
        failed.status.code = RunStatus::Code::Failed;
        failed.status.error = "boom";
        failed.status.digest = 11;
        out << encodeJournalLine(11, failed) << '\n';
    }
    ClaimDir claims(dir.path, "w0");
    ASSERT_TRUE(claims.tryClaim(10)); // done: must NOT count in-flight
    ASSERT_TRUE(claims.tryClaim(12)); // genuinely in flight

    const stats::JsonValue doc = stats::parseJson(
        fabric::buildDirSnapshotJson(dir.path, 30.0));
    EXPECT_EQ(doc.at("sweep").asString(), "dirsweep");
    EXPECT_EQ(doc.at("points").asUint64(), 4u);
    EXPECT_EQ(doc.at("ok").asUint64(), 1u);
    EXPECT_EQ(doc.at("failed").asUint64(), 1u);
    EXPECT_EQ(doc.at("in_flight").asUint64(), 1u);
    EXPECT_EQ(doc.at("pending").asUint64(), 1u);
    ASSERT_EQ(doc.at("failures").elements.size(), 1u);
    EXPECT_EQ(doc.at("failures").elements[0].at("error").asString(),
              "boom");
}

TEST(FabricHttp, ServesSnapshotAndDashboard)
{
    fabric::HttpServer::Provider provider = [] {
        return std::string("{\"probe\":1}");
    };
    std::unique_ptr<fabric::HttpServer> server;
    try {
        server = std::make_unique<fabric::HttpServer>("127.0.0.1", 0,
                                                      provider);
    } catch (const std::exception &error) {
        GTEST_SKIP() << "cannot bind a localhost socket here: "
                     << error.what();
    }
    ASSERT_NE(server->port(), 0);

    auto get = [&](const std::string &target) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(server->port());
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd);
            return std::string();
        }
        const std::string request =
            "GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n";
        (void)!::send(fd, request.data(), request.size(), 0);
        std::string response;
        char buf[4096];
        ssize_t n;
        while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
            response.append(buf, static_cast<std::size_t>(n));
        ::close(fd);
        return response;
    };

    const std::string snapshot = get("/snapshot.json");
    EXPECT_NE(snapshot.find("200 OK"), std::string::npos);
    EXPECT_NE(snapshot.find("{\"probe\":1}"), std::string::npos);
    EXPECT_NE(snapshot.find("application/json"), std::string::npos);
    const std::string dash = get("/");
    EXPECT_NE(dash.find("200 OK"), std::string::npos);
    EXPECT_NE(dash.find("<!doctype html>"), std::string::npos);
    EXPECT_NE(dash.find("snapshot.json"), std::string::npos);
    const std::string missing = get("/nope");
    EXPECT_NE(missing.find("404"), std::string::npos);
    server->stop();
}

TEST(FabricEndToEnd, TwoWorkersMatchSingleProcessByteForByte)
{
    const std::vector<ExperimentPoint> points = sweepPoints();

    ExperimentOptions reference;
    reference.jobs = 2;
    const std::string expected =
        emitJson(runExperiments(points, reference));

    TempDir dir("e2e");
    auto workerOpts = [&](const char *id) {
        ExperimentOptions opts;
        opts.jobs = 1;
        opts.fabricDir = dir.path;
        opts.fabricRole = ExperimentOptions::FabricRole::Worker;
        opts.fabricWorkerId = id;
        opts.fabricHeartbeatSec = 0.1;
        return opts;
    };
    std::string fromA, fromB;
    std::thread workerA([&] {
        fromA = emitJson(runExperiments(points, workerOpts("wA")));
    });
    std::thread workerB([&] {
        fromB = emitJson(runExperiments(points, workerOpts("wB")));
    });
    workerA.join();
    workerB.join();
    EXPECT_EQ(fromA, expected);
    EXPECT_EQ(fromB, expected);

    // The work was actually split: between them the workers claimed
    // every point exactly once (shards partition the digest set)...
    ShardScanner scanner(dir.path);
    scanner.poll();
    EXPECT_EQ(scanner.done().size(), points.size());

    // ...and a late coordinator merges the same bytes from the shards
    // alone, running nothing.
    ExperimentOptions coord;
    coord.fabricDir = dir.path;
    coord.fabricRole = ExperimentOptions::FabricRole::Coordinator;
    EXPECT_EQ(emitJson(runExperiments(points, coord)), expected);
}

TEST(FabricEndToEnd, DeterministicFailuresMergeIdentically)
{
    std::vector<ExperimentPoint> points = sweepPoints();

    ExperimentOptions reference;
    reference.jobs = 2;
    reference.inject = {{1, FaultInjection::Kind::Throw}};
    const std::string expected =
        emitJson(runExperiments(points, reference));

    TempDir dir("e2e_fail");
    auto workerOpts = [&](const char *id) {
        ExperimentOptions opts;
        opts.jobs = 1;
        opts.fabricDir = dir.path;
        opts.fabricRole = ExperimentOptions::FabricRole::Worker;
        opts.fabricWorkerId = id;
        opts.fabricHeartbeatSec = 0.1;
        // Every worker injects the same deterministic fault, exactly
        // as every process of a real sweep shares TEMPO_FAULT_INJECT.
        opts.inject = {{1, FaultInjection::Kind::Throw}};
        return opts;
    };
    std::string fromA, fromB;
    std::thread workerA([&] {
        fromA = emitJson(runExperiments(points, workerOpts("wA")));
    });
    std::thread workerB([&] {
        fromB = emitJson(runExperiments(points, workerOpts("wB")));
    });
    workerA.join();
    workerB.join();
    // Failures ARE journaled in fabric shards (unlike the resume
    // journal), so the merged output carries the failure row and still
    // matches the single-process bytes.
    EXPECT_EQ(fromA, expected);
    EXPECT_EQ(fromB, expected);
    EXPECT_NE(expected.find("\"failed\""), std::string::npos);
}

TEST(FabricEndToEnd, RestartedWorkerReclaimsItsOwnStaleClaim)
{
    // A worker that died holding a claim and restarts under the same
    // id must not deadlock on its own stale claim.
    const std::vector<ExperimentPoint> points = sweepPoints();
    TempDir dir("restart");
    std::vector<std::uint64_t> digests;
    for (std::size_t i = 0; i < points.size(); ++i)
        digests.push_back(pointDigest(points[i], i));
    ClaimDir claims(dir.path, "wA");
    ASSERT_TRUE(claims.tryClaim(digests[0]));
    ASSERT_TRUE(claims.tryClaim(digests[2]));

    ExperimentOptions opts;
    opts.jobs = 1;
    opts.fabricDir = dir.path;
    opts.fabricRole = ExperimentOptions::FabricRole::Worker;
    opts.fabricWorkerId = "wA";
    opts.fabricHeartbeatSec = 0.1;
    const std::vector<RunResult> results =
        runExperiments(points, opts);
    for (const RunResult &result : results)
        EXPECT_TRUE(result.status.ok());
}

} // namespace
} // namespace tempo