/**
 * @file
 * Sharded-execution determinism suite. The ShardEngine's contract is
 * that results are a pure function of the simulation state, never of
 * the worker count or thread scheduling, so every test here compares
 * full statistics across worker counts 1/2/4 — the 1-worker run is the
 * differential oracle for the parallel ones.
 *
 * Sharded goldens pin the sharded timing model itself (it differs from
 * the legacy inline engine by design — see docs/MODEL.md "Sharded
 * execution"); regenerate them like the legacy goldens when a model
 * change is intentional.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cli/config_file.hh"
#include "common/event_queue.hh"
#include "common/profiler.hh"
#include "common/shard.hh"
#include "core/experiment.hh"
#include "core/multi_system.hh"
#include "core/tempo_system.hh"
#include "stats/json.hh"

#ifndef TEMPO_CONFIG_DIR
#error "TEMPO_CONFIG_DIR must point at the committed configs/"
#endif

namespace tempo {
namespace {

// Multi-worker runs serialize onto one CPU on small CI boxes, so keep
// the sharded workloads short — determinism does not need length.
constexpr std::uint64_t kRefs = 6000;

/** Entry-by-entry report comparison with readable failure output. */
void
expectSameReport(const stats::Report &oracle, const stats::Report &got,
                 const std::string &label)
{
    ASSERT_EQ(oracle.entries().size(), got.entries().size()) << label;
    for (std::size_t i = 0; i < oracle.entries().size(); ++i) {
        const auto &[name, value] = oracle.entries()[i];
        EXPECT_EQ(name, got.entries()[i].first) << label;
        EXPECT_EQ(value, got.entries()[i].second)
            << label << ": stat " << name << " diverged";
    }
}

// --- ShardEngine unit level ------------------------------------------

/** Two domains ping-pong a message chain; any worker count must see
 * the identical delivery log and the engine must count every hop. */
TEST(ShardEngine, PingPongIsWorkerCountInvariant)
{
    constexpr Cycle kQuantum = 10;
    constexpr int kHops = 50;

    auto run = [&](unsigned workers) {
        auto log = std::make_shared<std::vector<std::pair<DomainId, Cycle>>>();
        auto eqs = std::make_shared<std::vector<EventQueue>>(2);
        auto engine =
            std::make_shared<ShardEngine>(kQuantum, workers);
        const DomainId d0 = engine->addDomain(&(*eqs)[0]);
        const DomainId d1 = engine->addDomain(&(*eqs)[1]);

        // Each hop records (domain, cycle) and forwards to the peer at
        // exactly the lookahead bound until the budget runs out.
        std::function<void(DomainId, int)> hop =
            [&, log, eqs, engine](DomainId self, int remaining) {
                log->emplace_back(self, (*eqs)[self].now());
                if (remaining == 0)
                    return;
                const DomainId peer = self == d0 ? d1 : d0;
                engine->post(peer, (*eqs)[self].now() + kQuantum,
                             [&hop, peer, remaining] {
                                 hop(peer, remaining - 1);
                             });
            };
        (*eqs)[0].schedule(0, [&hop, d0] { hop(d0, kHops); });
        engine->run();
        return std::make_pair(*log, engine->stats());
    };

    const auto [oracle_log, oracle_stats] = run(1);
    ASSERT_EQ(oracle_log.size(), kHops + 1u);
    EXPECT_EQ(oracle_stats.messages, static_cast<std::uint64_t>(kHops));
    EXPECT_GT(oracle_stats.epochs, 0u);
    for (const unsigned workers : {2u, 4u}) {
        const auto [log, stats] = run(workers);
        EXPECT_EQ(log, oracle_log) << workers << " workers";
        EXPECT_EQ(stats.messages, oracle_stats.messages);
        EXPECT_EQ(stats.epochs, oracle_stats.epochs);
    }
}

/** An exception inside a domain slice must abort the run and rethrow
 * on the calling thread, with every worker joined cleanly. */
TEST(ShardEngine, DomainFailurePropagatesToCaller)
{
    EventQueue eq0, eq1;
    ShardEngine engine(8, 2);
    engine.addDomain(&eq0);
    engine.addDomain(&eq1);
    eq0.schedule(0, [] {});
    eq1.schedule(5, [] { throw std::runtime_error("injected"); });
    EXPECT_THROW(engine.run(), std::runtime_error);
}

/** Messages must respect the lookahead quantum; posting under it is a
 * contract violation the engine refuses. */
TEST(ShardEngineDeath, PostUnderLookaheadAsserts)
{
    EXPECT_DEATH(
        {
            EventQueue eq0;
            EventQueue eq1;
            ShardEngine engine(10, 1);
            const DomainId d1 = [&] {
                engine.addDomain(&eq0);
                return engine.addDomain(&eq1);
            }();
            eq0.schedule(0, [&] { engine.post(d1, 5, [] {}); });
            engine.run();
        },
        "lookahead");
}

// --- Full-system bit identity ----------------------------------------

SystemConfig
shardedConfig(bool tempo, unsigned workers)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    cfg.withTempo(tempo);
    cfg.withShards(workers);
    return cfg;
}

/** Single-app sharded runs: every statistic identical at 1/2/4
 * workers, for both the baseline and the TEMPO machine. */
TEST(ShardedSystem, SingleAppBitIdenticalAcrossWorkerCounts)
{
    for (const char *workload : {"mcf", "astar.small"}) {
        for (const bool tempo : {false, true}) {
            const RunResult oracle =
                runWorkload(shardedConfig(tempo, 1), workload, kRefs);
            for (const unsigned workers : {2u, 4u}) {
                const RunResult got = runWorkload(
                    shardedConfig(tempo, workers), workload, kRefs);
                const std::string label = std::string(workload)
                    + (tempo ? "/tempo/" : "/base/")
                    + std::to_string(workers) + "w";
                EXPECT_EQ(oracle.runtime, got.runtime) << label;
                EXPECT_EQ(oracle.energy.total(), got.energy.total())
                    << label;
                expectSameReport(oracle.report, got.report, label);
            }
        }
    }
}

/** Multiprogrammed sharded runs: per-app finish times and per-app
 * statistics identical at 1/2/4 workers. */
TEST(ShardedSystem, MixBitIdenticalAcrossWorkerCounts)
{
    const std::vector<std::string> mix = {"xsbench", "astar.small",
                                          "mcf", "hmmer.small"};
    auto run = [&](unsigned workers) {
        SystemConfig cfg = shardedConfig(true, workers);
        MultiSystem system(cfg, makeMix(mix, cfg.seed));
        return system.run(kRefs);
    };
    const MultiResult oracle = run(1);
    ASSERT_EQ(oracle.appFinish.size(), mix.size());
    for (const unsigned workers : {2u, 4u}) {
        const MultiResult got = run(workers);
        const std::string label = std::to_string(workers) + " workers";
        EXPECT_EQ(oracle.runtime, got.runtime) << label;
        EXPECT_EQ(oracle.appFinish, got.appFinish) << label;
        for (std::size_t i = 0; i < mix.size(); ++i) {
            stats::Report a, b;
            oracle.appStats[i].report(a);
            got.appStats[i].report(b);
            expectSameReport(a, b, label + " app " + std::to_string(i));
        }
    }
}

/** Back-to-back sharded runs of the same config reproduce exactly —
 * the engine introduces no hidden run-to-run state. */
TEST(ShardedSystem, RepeatRunsReproduce)
{
    const RunResult a =
        runWorkload(shardedConfig(true, 4), "mcf", kRefs);
    const RunResult b =
        runWorkload(shardedConfig(true, 4), "mcf", kRefs);
    EXPECT_EQ(a.runtime, b.runtime);
    expectSameReport(a.report, b.report, "repeat");
}

// --- Sharded goldens -------------------------------------------------

struct ShardedGolden {
    const char *config;
    const char *workload;
    std::uint64_t runtime;
    std::uint64_t walks;
    std::uint64_t dramPtw;
    std::uint64_t dramReplay;
    double tlbMissRate;
};

// Golden values for seed 42, 6000 refs, on the sharded engine
// (worker-count invariant; the identity tests above tie 2/4 workers to
// these). Regenerate by running this test and pasting the actuals when
// a model change is intentional.
const ShardedGolden kShardedGolden[] = {
    {"paper_baseline.ini", "mcf",
     961102ull, 1574ull, 1580ull, 1574ull, 0.26233333333333331},
    {"paper_baseline.ini", "astar.small",
     469606ull, 580ull, 209ull, 580ull, 0.096666666666666665},
    {"tempo_full.ini", "mcf",
     880283ull, 1582ull, 1580ull, 401ull, 0.26366666666666666},
    {"tempo_full.ini", "astar.small",
     460986ull, 587ull, 209ull, 385ull, 0.097833333333333328},
};

TEST(ShardedGoldenStats, HeadlineCountersMatch)
{
    for (const ShardedGolden &golden : kShardedGolden) {
        SCOPED_TRACE(std::string(golden.config) + " / "
                     + golden.workload);
        SystemConfig cfg = SystemConfig::skylakeScaled();
        cli::applyConfigFile(
            std::string(TEMPO_CONFIG_DIR) + "/" + golden.config, cfg);
        cfg.withShards(1);
        const RunResult r = runWorkload(cfg, golden.workload, kRefs);
        EXPECT_EQ(r.runtime, golden.runtime);
        EXPECT_EQ(r.core.walks, golden.walks);
        EXPECT_EQ(r.dramPtw, golden.dramPtw);
        EXPECT_EQ(r.dramReplay, golden.dramReplay);
        EXPECT_NEAR(r.report.get("tlb.miss_rate"), golden.tlbMissRate,
                    1e-12);
    }
}

// --- JSON round trip -------------------------------------------------

/** tempo-bench-1 documents emitted from sharded runs are byte-identical
 * at any worker count and carry the shards metadata. */
TEST(ShardedJson, ByteIdenticalAcrossWorkerCounts)
{
    auto emit = [&](unsigned workers) {
        std::vector<ExperimentPoint> points;
        for (const bool tempo : {false, true}) {
            ExperimentPoint p;
            p.workload = "mcf";
            p.config = SystemConfig::skylakeScaled();
            p.config.withTempo(tempo);
            p.refs = kRefs;
            points.push_back(std::move(p));
        }
        ExperimentOptions opts;
        opts.shards = workers;
        const std::vector<RunResult> results =
            runExperiments(points, opts);
        std::vector<stats::BenchPoint> bench;
        for (std::size_t i = 0; i < results.size(); ++i) {
            bench.push_back(toBenchPoint(
                points[i].workload,
                {{"mc.tempo", i == 0 ? "false" : "true"},
                 {"shards", "2"}},
                results[i]));
        }
        const std::string path =
            "shard_json_" + std::to_string(workers) + ".json";
        stats::writeBenchJson(path, "shard_test", kRefs,
                              SystemConfig::skylakeScaled().seed,
                              bench);
        std::ifstream in(path);
        std::ostringstream text;
        text << in.rdbuf();
        std::remove(path.c_str());
        return text.str();
    };
    const std::string oracle = emit(1);
    EXPECT_NE(oracle.find("\"shards\": 2"), std::string::npos);
    EXPECT_EQ(oracle, emit(2));
    EXPECT_EQ(oracle, emit(4));
}

// --- Profiler aggregation --------------------------------------------

TEST(ProfilerTotals, AddMergesPerWorkerWindows)
{
    prof::Totals a, b;
    a.ns[0] = 10;
    a.calls[0] = 2;
    a.ns[prof::kNumComponents - 1] = 7;
    b.ns[0] = 5;
    b.calls[0] = 1;
    b.calls[prof::kNumComponents - 1] = 3;
    a.add(b);
    EXPECT_EQ(a.ns[0], 15u);
    EXPECT_EQ(a.calls[0], 3u);
    EXPECT_EQ(a.ns[prof::kNumComponents - 1], 7u);
    EXPECT_EQ(a.calls[prof::kNumComponents - 1], 3u);
}

} // namespace
} // namespace tempo
