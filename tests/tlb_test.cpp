#include <gtest/gtest.h>

#include "vm/tlb.hh"

namespace tempo {
namespace {

TEST(Tlb, MissThenHitAfterFill)
{
    Tlb tlb(TlbConfig{});
    const TlbResult miss = tlb.lookup(0x1234000);
    EXPECT_FALSE(miss.hit);
    tlb.fill(0x1234000, PageSize::Page4K);
    const TlbResult hit = tlb.lookup(0x1234000);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.size, PageSize::Page4K);
}

TEST(Tlb, L1HitIsFasterThanL2Hit)
{
    TlbConfig cfg;
    Tlb tlb(cfg);
    tlb.fill(0x1000, PageSize::Page4K);
    const TlbResult l1 = tlb.lookup(0x1000);
    EXPECT_EQ(l1.latency, cfg.l1Latency);
    const TlbResult miss = tlb.lookup(0x999999000);
    EXPECT_EQ(miss.latency, cfg.l1Latency + cfg.l2Latency);
}

TEST(Tlb, HitCoversWholePage)
{
    Tlb tlb(TlbConfig{});
    tlb.fill(0x4000, PageSize::Page4K);
    EXPECT_TRUE(tlb.lookup(0x4000).hit);
    EXPECT_TRUE(tlb.lookup(0x4fff).hit);
    EXPECT_FALSE(tlb.lookup(0x5000).hit);
}

TEST(Tlb, SuperpageEntryCoversSuperpage)
{
    Tlb tlb(TlbConfig{});
    tlb.fill(0x40000000, PageSize::Page2M);
    EXPECT_TRUE(tlb.lookup(0x40000000).hit);
    EXPECT_TRUE(tlb.lookup(0x40000000 + kPage2MBytes - 1).hit);
    EXPECT_FALSE(tlb.lookup(0x40000000 + kPage2MBytes).hit);
    EXPECT_EQ(tlb.lookup(0x40000000).size, PageSize::Page2M);
}

TEST(Tlb, OneGigEntries)
{
    Tlb tlb(TlbConfig{});
    tlb.fill(0x80000000ull, PageSize::Page1G);
    EXPECT_TRUE(tlb.lookup(0x80000000ull + 12345).hit);
    EXPECT_EQ(tlb.lookup(0x80000000ull).size, PageSize::Page1G);
}

TEST(Tlb, EvictedL1EntryStillHitsInL2)
{
    TlbConfig cfg;
    cfg.l1Entries4K = 4;
    cfg.l1Assoc4K = 4; // one set
    cfg.l2Entries = 64;
    cfg.l2Assoc = 8;
    Tlb tlb(cfg);
    // Fill 5 pages: the first falls out of the 4-entry L1.
    for (Addr page = 0; page < 5; ++page)
        tlb.fill(page * kPageBytes, PageSize::Page4K);
    const std::uint64_t l2_before = tlb.l2Hits();
    EXPECT_TRUE(tlb.lookup(0).hit);
    EXPECT_EQ(tlb.l2Hits(), l2_before + 1);
}

TEST(Tlb, OneGigEntriesBypassL2)
{
    TlbConfig cfg;
    cfg.l1Entries1G = 1;
    cfg.l1Assoc1G = 1;
    Tlb tlb(cfg);
    tlb.fill(0x0ull, PageSize::Page1G);
    tlb.fill(1ull << 30, PageSize::Page1G); // evicts the first
    // No 1G entries in the L2 on real parts: the first page misses.
    EXPECT_FALSE(tlb.lookup(0x0).hit);
}

TEST(Tlb, MissRateTracksLookups)
{
    Tlb tlb(TlbConfig{});
    tlb.lookup(0x1000);
    tlb.fill(0x1000, PageSize::Page4K);
    tlb.lookup(0x1000);
    EXPECT_EQ(tlb.lookups(), 2u);
    EXPECT_DOUBLE_EQ(tlb.missRate(), 0.5);
}

TEST(Tlb, FlushDropsEverything)
{
    Tlb tlb(TlbConfig{});
    tlb.fill(0x1000, PageSize::Page4K);
    tlb.fill(0x40000000, PageSize::Page2M);
    tlb.flush();
    EXPECT_FALSE(tlb.lookup(0x1000).hit);
    EXPECT_FALSE(tlb.lookup(0x40000000).hit);
}

TEST(Tlb, DistinctSizesDoNotAlias)
{
    Tlb tlb(TlbConfig{});
    // A 4K fill at some address must not create a phantom 2M hit for
    // the surrounding 2M region.
    tlb.fill(0x200000, PageSize::Page4K);
    EXPECT_FALSE(tlb.lookup(0x200000 + 8192).hit);
}

TEST(Tlb, ReportHasRates)
{
    Tlb tlb(TlbConfig{});
    tlb.lookup(0x1000);
    stats::Report report;
    tlb.report(report);
    EXPECT_TRUE(report.has("miss_rate"));
    EXPECT_EQ(report.get("misses"), 1.0);
}

class TlbChurnProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(TlbChurnProperty, CapacityBoundsHitRate)
{
    // Property: with N distinct hot pages and capacity >= N, everything
    // hits after warmup; with capacity << N under LRU churn (sequential
    // sweep), reuse distance exceeds capacity and most lookups miss.
    const unsigned pages = GetParam();
    TlbConfig cfg;
    Tlb tlb(cfg);
    for (unsigned round = 0; round < 4; ++round) {
        for (unsigned p = 0; p < pages; ++p)
            if (!tlb.lookup(p * kPageBytes).hit)
                tlb.fill(p * kPageBytes, PageSize::Page4K);
    }
    const double rate = tlb.missRate();
    const unsigned capacity = cfg.l2Entries;
    if (pages <= cfg.l1Entries4K) {
        EXPECT_LT(rate, 0.3) << pages;
    } else if (pages > capacity) {
        EXPECT_GT(rate, 0.7) << pages;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TlbChurnProperty,
                         ::testing::Values(8u, 32u, 64u, 2048u, 8192u));

} // namespace
} // namespace tempo
