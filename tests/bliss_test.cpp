#include <gtest/gtest.h>

#include "mc/bliss.hh"

namespace tempo {
namespace {

struct BlissFixture : public ::testing::Test {
    DramConfig dram_cfg;
    std::unique_ptr<DramDevice> dram;
    std::unique_ptr<TxQueue> txq;
    SchedulerConfig cfg;
    std::uint64_t seq = 0;

    void
    SetUp() override
    {
        dram_cfg.rowPolicy = RowPolicyKind::Open;
        dram_cfg.channels = 1; // flat enqueue order == channel age order
        dram = std::make_unique<DramDevice>(dram_cfg);
        txq = std::make_unique<TxQueue>(*dram);
        cfg.blissThreshold = 8;
        cfg.blissNormalWeight = 2;
        cfg.blissPrefetchWeight = 1;
        cfg.blissClearInterval = 10000;
    }

    void
    TearDown() override
    {
        txq.reset();
    }

    QueuedRequest
    make(Addr paddr, AppId app, ReqKind kind = ReqKind::Regular,
         bool tagged = false)
    {
        QueuedRequest entry;
        entry.req.paddr = paddr;
        entry.req.app = app;
        entry.req.kind = kind;
        entry.req.tempo.tagged = tagged;
        entry.arrival = 0;
        entry.seq = seq++;
        return entry;
    }

    std::uint32_t
    add(Addr paddr, AppId app, ReqKind kind = ReqKind::Regular)
    {
        return txq->enqueue(make(paddr, app, kind));
    }
};

TEST_F(BlissFixture, BlacklistsAfterConsecutiveRequests)
{
    BlissScheduler sched(cfg);
    // threshold 8 / weight 2 = 4 consecutive demand requests.
    for (int i = 0; i < 3; ++i) {
        sched.served(make(0x1000, 1), 1);
        EXPECT_FALSE(sched.isBlacklisted(1));
    }
    sched.served(make(0x1000, 1), 1);
    EXPECT_TRUE(sched.isBlacklisted(1));
    EXPECT_EQ(sched.blacklistEvents(), 1u);
}

TEST_F(BlissFixture, SwitchingAppsResetsCounter)
{
    BlissScheduler sched(cfg);
    sched.served(make(0x1000, 1), 1);
    sched.served(make(0x1000, 1), 2);
    sched.served(make(0x2000, 2), 3); // different app: reset
    sched.served(make(0x1000, 1), 4);
    sched.served(make(0x1000, 1), 5);
    sched.served(make(0x1000, 1), 6);
    EXPECT_FALSE(sched.isBlacklisted(1));
}

TEST_F(BlissFixture, PrefetchesCountHalf)
{
    BlissScheduler sched(cfg);
    // 8 prefetches at weight 1 reach the threshold of 8; 7 do not.
    for (int i = 0; i < 7; ++i) {
        sched.served(make(0x1000, 3, ReqKind::TempoPrefetch), 1);
        ASSERT_FALSE(sched.isBlacklisted(3)) << i;
    }
    sched.served(make(0x1000, 3, ReqKind::TempoPrefetch), 1);
    EXPECT_TRUE(sched.isBlacklisted(3));
}

TEST_F(BlissFixture, ClearIntervalUnblacklists)
{
    BlissScheduler sched(cfg);
    for (int i = 0; i < 4; ++i)
        sched.served(make(0x1000, 1), 1);
    ASSERT_TRUE(sched.isBlacklisted(1));
    // Serving anything after the clearing interval resets the list.
    sched.served(make(0x9000, 2), 1 + cfg.blissClearInterval);
    EXPECT_FALSE(sched.isBlacklisted(1));
}

TEST_F(BlissFixture, NonBlacklistedAppWinsPick)
{
    BlissScheduler sched(cfg);
    for (int i = 0; i < 4; ++i)
        sched.served(make(0x1000, 1), 1);
    ASSERT_TRUE(sched.isBlacklisted(1));

    add(0x2000, 1); // older but blacklisted
    const std::uint32_t clean = add(0x3000, 2);
    EXPECT_EQ(sched.pick(*txq, 0, *dram, 10), clean);
}

TEST_F(BlissFixture, TempoAffinityServesPrefetchBeforeSwitching)
{
    cfg.blissTempoAffinity = true;
    BlissScheduler sched(cfg);
    // App 1 just got a tagged PT access served.
    sched.served(make(0x1000, 1, ReqKind::PtWalk, /*tagged=*/true), 5);

    add(0x5000, 2); // other app, older
    const std::uint32_t pf = add(0x7000, 1, ReqKind::TempoPrefetch);
    // The paper's rule: the prefetch of the just-served PT access goes
    // before another application's stream.
    EXPECT_EQ(sched.pick(*txq, 0, *dram, 6), pf);
}

TEST_F(BlissFixture, NoAffinityWithoutTaggedPt)
{
    cfg.blissTempoAffinity = true;
    BlissScheduler sched(cfg);
    sched.served(make(0x1000, 1, ReqKind::Regular), 5);

    const std::uint32_t oldest = add(0x5000, 2);
    add(0x7000, 1, ReqKind::TempoPrefetch);
    // Without a preceding PT access there is no affinity override; the
    // older request wins its class... but note prefetch class ordering
    // applies only with tempoGrouping. Here both are class "no row hit",
    // so age decides.
    EXPECT_EQ(sched.pick(*txq, 0, *dram, 6), oldest);
}

TEST_F(BlissFixture, ZeroWeightRequestDoesNotStealStreamOwnership)
{
    // Regression: a zero-weight prefetch from a DIFFERENT app used to
    // overwrite lastApp_ and reset the consecutive counter, so a hog
    // interleaving free prefetches from elsewhere would never reach
    // the blacklist threshold.
    SchedulerConfig c = cfg;
    c.blissPrefetchWeight = 0;
    BlissScheduler sched(c);
    // threshold 8 / demand weight 2 = 4 consecutive demand requests,
    // with app 2's free prefetches interleaved after every one.
    for (int i = 0; i < 3; ++i) {
        sched.served(make(0x1000, 1), 1);
        sched.served(make(0x2000, 2, ReqKind::TempoPrefetch), 1);
        ASSERT_FALSE(sched.isBlacklisted(1)) << i;
    }
    sched.served(make(0x1000, 1), 1);
    EXPECT_TRUE(sched.isBlacklisted(1));
    // The invisible prefetches never built a streak for app 2 either.
    EXPECT_FALSE(sched.isBlacklisted(2));
}

TEST_F(BlissFixture, ZeroWeightRequestFromSameAppLeavesStreakIntact)
{
    SchedulerConfig c = cfg;
    c.blissPrefetchWeight = 0;
    BlissScheduler sched(c);
    // App 1's own free prefetches neither advance nor reset its streak.
    for (int i = 0; i < 3; ++i) {
        sched.served(make(0x1000, 1), 1);
        sched.served(make(0x1000, 1, ReqKind::TempoPrefetch), 1);
        ASSERT_FALSE(sched.isBlacklisted(1)) << i;
    }
    sched.served(make(0x1000, 1), 1);
    EXPECT_TRUE(sched.isBlacklisted(1));
}

TEST_F(BlissFixture, WeightSweepChangesBlacklistRate)
{
    // Property: higher prefetch weight -> apps blacklist sooner when
    // issuing prefetch-heavy streams.
    for (unsigned weight : {0u, 1u, 2u}) {
        SchedulerConfig c = cfg;
        c.blissPrefetchWeight = weight;
        BlissScheduler sched(c);
        int until_blacklist = 0;
        for (int i = 0; i < 100 && !sched.isBlacklisted(7); ++i) {
            sched.served(make(0x1000, 7, ReqKind::TempoPrefetch), 1);
            ++until_blacklist;
        }
        if (weight == 0) {
            EXPECT_FALSE(sched.isBlacklisted(7));
        } else {
            EXPECT_EQ(until_blacklist,
                      static_cast<int>(cfg.blissThreshold / weight));
        }
    }
}

} // namespace
} // namespace tempo
