#include <gtest/gtest.h>

#include "core/tempo_system.hh"

namespace tempo {
namespace {

constexpr std::uint64_t kRefs = 30000;

TEST(System, RunsToCompletion)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    const RunResult result = runWorkload(cfg, "mcf", kRefs);
    EXPECT_EQ(result.core.refs, kRefs);
    EXPECT_GT(result.runtime, 0u);
    EXPECT_GT(result.energy.total(), 0.0);
}

TEST(System, DeterministicAcrossRuns)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    const RunResult a = runWorkload(cfg, "xsbench", kRefs);
    const RunResult b = runWorkload(cfg, "xsbench", kRefs);
    EXPECT_EQ(a.runtime, b.runtime);
    EXPECT_EQ(a.core.walks, b.core.walks);
    EXPECT_EQ(a.dramPtw, b.dramPtw);
    EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
}

TEST(System, SeedChangesTheRun)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    const RunResult a = runWorkload(cfg, "xsbench", kRefs);
    SystemConfig cfg2 = SystemConfig::skylakeScaled();
    cfg2.withSeed(777);
    const RunResult b = runWorkload(cfg2, "xsbench", kRefs);
    EXPECT_NE(a.runtime, b.runtime);
}

TEST(System, BigDataWorkloadWalksOften)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    const RunResult result = runWorkload(cfg, "xsbench", kRefs);
    // Big-memory workloads thrash the TLB (paper Sec. 1).
    EXPECT_GT(result.core.walks, kRefs / 10);
    EXPECT_GT(result.core.walksWithLeafDram, 0u);
}

TEST(System, SmallWorkloadWalksRarely)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    const RunResult result =
        runWorkload(cfg, "swaptions.small", kRefs);
    EXPECT_LT(result.report.get("tlb.miss_rate"), 0.15);
}

TEST(System, RuntimeFractionsAreSane)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    const RunResult result = runWorkload(cfg, "graph500", kRefs);
    const double total = result.fracRuntimePtwDram()
        + result.fracRuntimeReplayDram() + result.fracRuntimeOtherDram();
    EXPECT_GT(total, 0.0);
    EXPECT_LE(total, 1.0);
    const double dram_total = result.fracDramPtw()
        + result.fracDramReplay() + result.fracDramOther();
    EXPECT_NEAR(dram_total, 1.0, 1e-9);
}

TEST(System, TempoDoesNotChangeTheTrace)
{
    SystemConfig base = SystemConfig::skylakeScaled();
    const RunResult off = runWorkload(base, "canneal", kRefs);
    SystemConfig cfg = SystemConfig::skylakeScaled();
    cfg.withTempo(true);
    const RunResult on = runWorkload(cfg, "canneal", kRefs);
    // Same references, same walks, same footprint — only timing moved.
    EXPECT_EQ(off.core.refs, on.core.refs);
    EXPECT_EQ(off.core.pageFaults, on.core.pageFaults);
    EXPECT_DOUBLE_EQ(off.superpageCoverage, on.superpageCoverage);
}

TEST(System, TempoPrefetchCountMatchesTriggers)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    cfg.withTempo(true);
    TempoSystem system(cfg, makeWorkload("xsbench", cfg.seed));
    const RunResult result = system.run(kRefs);
    const auto &mc = system.machine().mc;
    // Non-speculative triggering: every issued prefetch corresponds to
    // a tagged leaf-PT DRAM access, minus drops and faults.
    EXPECT_EQ(mc.tempoPrefetchesIssued() + mc.tempoPrefetchesDropped()
                  + mc.tempoFaultSuppressed(),
              result.core.leafPtDramAccesses);
}

TEST(System, ReplayServiceBreakdownAddsUp)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    cfg.withTempo(true);
    const RunResult result = runWorkload(cfg, "lsh", kRefs);
    const CoreStats &core = result.core;
    EXPECT_EQ(core.replayAfterDramWalk,
              core.replayLlcHits + core.replayPrivateHits
                  + core.replayMerged + core.replayRowHits
                  + core.replayArray);
}

TEST(System, ImpGeneratesPrefetchTraffic)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    cfg.withImp(true);
    TempoSystem system(cfg, makeWorkload("spmv", cfg.seed));
    const RunResult result = system.run(kRefs);
    EXPECT_GT(result.core.impIssued, 0u);
    EXPECT_GT(system.machine().mc.served(ReqKind::ImpPrefetch), 0u);
}

TEST(System, ImpPrefetchesCanFaultAndAreSuppressed)
{
    // IMP prefetches to not-yet-touched pages exercise TEMPO's page
    // fault suppression (paper Sec. 4.5).
    SystemConfig cfg = SystemConfig::skylakeScaled();
    cfg.withImp(true).withTempo(true);
    TempoSystem system(cfg, makeWorkload("xsbench", cfg.seed));
    const RunResult result = system.run(kRefs);
    EXPECT_GT(result.core.impFaults, 0u);
}

TEST(System, EnergyBreakdownDominatedByStatic)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    const RunResult result = runWorkload(cfg, "mcf", kRefs);
    // The paper's energy savings work through runtime (static energy);
    // the model must reflect that structure.
    EXPECT_GT(result.energy.coreStatic + result.energy.dramStatic,
              result.energy.dramDynamic);
}

TEST(System, ReportIsRich)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    const RunResult result = runWorkload(cfg, "sgms", 10000);
    for (const char *key :
         {"refs", "walks", "tlb.miss_rate", "dram.row_hit_rate",
          "mc.replay.served", "cache.llc.hit_rate",
          "vm.superpage_coverage", "energy.total"}) {
        EXPECT_TRUE(result.report.has(key)) << key;
    }
}

TEST(System, PageFaultLatencyExtendsRuntime)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    const RunResult fast = runWorkload(cfg, "illustris", 10000);
    SystemConfig slow_cfg = SystemConfig::skylakeScaled();
    slow_cfg.pageFaultLatency = 2000;
    const RunResult slow = runWorkload(slow_cfg, "illustris", 10000);
    EXPECT_GT(slow.runtime, fast.runtime);
}

TEST(SystemDeathTest, EmptyRunIsRejected)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    TempoSystem system(cfg, makeWorkload("mcf", 1));
    EXPECT_DEATH(system.run(0), "empty run");
}

} // namespace
} // namespace tempo
