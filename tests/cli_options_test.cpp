#include <gtest/gtest.h>

#include <stdexcept>

#include "cli/options.hh"

namespace tempo::cli {
namespace {

TEST(CliOptions, Defaults)
{
    const Options options = parse({});
    EXPECT_EQ(options.workload, "xsbench");
    EXPECT_EQ(options.refs, 300000u);
    EXPECT_FALSE(options.tempo);
    EXPECT_FALSE(options.compare);
    EXPECT_FALSE(options.help);
}

TEST(CliOptions, ParsesEverything)
{
    const Options options = parse(
        {"--workload", "graph500", "--refs", "5000", "--tempo",
         "--imp", "--sched", "bliss", "--row-policy", "closed",
         "--page-policy", "hugetlbfs2m", "--frag", "0.25", "--subrow",
         "foa", "--subrow-dedicated", "2", "--seed", "99",
         "--full-report", "--csv", "out.csv"});
    EXPECT_EQ(options.workload, "graph500");
    EXPECT_EQ(options.refs, 5000u);
    EXPECT_TRUE(options.tempo);
    EXPECT_TRUE(options.imp);
    EXPECT_EQ(options.sched, "bliss");
    EXPECT_EQ(options.rowPolicy, "closed");
    EXPECT_EQ(options.pagePolicy, "hugetlbfs2m");
    EXPECT_DOUBLE_EQ(options.frag, 0.25);
    EXPECT_EQ(options.subrow, "foa");
    EXPECT_EQ(options.subrowDedicated, 2u);
    EXPECT_EQ(options.seed, 99u);
    EXPECT_TRUE(options.fullReport);
    EXPECT_EQ(options.csvPath, "out.csv");
}

TEST(CliOptions, HelpFlag)
{
    EXPECT_TRUE(parse({"--help"}).help);
    EXPECT_TRUE(parse({"-h"}).help);
    EXPECT_FALSE(usage().empty());
}

TEST(CliOptions, RejectsUnknownFlag)
{
    EXPECT_THROW((void)parse({"--bogus"}), std::invalid_argument);
}

TEST(CliOptions, RejectsMissingValue)
{
    EXPECT_THROW((void)parse({"--refs"}), std::invalid_argument);
}

TEST(CliOptions, RejectsBadNumbers)
{
    EXPECT_THROW((void)parse({"--refs", "abc"}),
                 std::invalid_argument);
    EXPECT_THROW((void)parse({"--refs", "12x"}),
                 std::invalid_argument);
    EXPECT_THROW((void)parse({"--refs", "0"}), std::invalid_argument);
    EXPECT_THROW((void)parse({"--frag", "1.5"}),
                 std::invalid_argument);
    EXPECT_THROW((void)parse({"--frag", "-0.1"}),
                 std::invalid_argument);
}

TEST(CliOptions, RejectsBadEnums)
{
    EXPECT_THROW((void)parse({"--sched", "magic"}),
                 std::invalid_argument);
    EXPECT_THROW((void)parse({"--row-policy", "sideways"}),
                 std::invalid_argument);
    EXPECT_THROW((void)parse({"--page-policy", "64k"}),
                 std::invalid_argument);
    EXPECT_THROW((void)parse({"--subrow", "maybe"}),
                 std::invalid_argument);
}

TEST(CliOptions, PrefetcherFlagParsesAndValidates)
{
    EXPECT_EQ(parse({"--prefetcher", "stride,tskid"}).prefetcher,
              "stride,tskid");
    EXPECT_EQ(parse({"--prefetcher=misb"}).prefetcher, "misb");
    EXPECT_EQ(parse({"--prefetcher", "none"}).prefetcher, "none");
    // Bad lists fail at parse time, before a long run starts.
    EXPECT_THROW((void)parse({"--prefetcher", "warp-drive"}),
                 std::invalid_argument);
    EXPECT_THROW((void)parse({"--prefetcher", "stride,stride"}),
                 std::invalid_argument);
    EXPECT_THROW((void)parse({"--prefetcher"}), std::invalid_argument);
    EXPECT_THROW((void)parse({"--prefetcher="}), std::invalid_argument);
}

TEST(CliOptions, PrefetcherFlagSelectsEngines)
{
    const SystemConfig cfg =
        toConfig(parse({"--prefetcher", "temporal,stride"}));
    EXPECT_EQ(cfg.prefetch.engines,
              (std::vector<std::string>{"temporal", "stride"}));
}

TEST(CliOptions, PrefetcherNoneOverridesImpFlag)
{
    const SystemConfig cfg =
        toConfig(parse({"--imp", "--prefetcher", "none"}));
    EXPECT_TRUE(cfg.prefetch.engines.empty());
    EXPECT_FALSE(cfg.imp.enabled);
    EXPECT_FALSE(cfg.stride.enabled);
}

TEST(CliOptions, LegacyFlagsUntouchedWithoutPrefetcherFlag)
{
    const SystemConfig cfg = toConfig(parse({"--imp"}));
    EXPECT_TRUE(cfg.prefetch.engines.empty());
    EXPECT_TRUE(cfg.imp.enabled);
}

TEST(CliOptions, TempoAndCompareConflict)
{
    EXPECT_THROW((void)parse({"--tempo", "--compare"}),
                 std::invalid_argument);
}

TEST(CliOptions, ToConfigMapsFields)
{
    Options options = parse(
        {"--tempo", "--sched", "bliss", "--row-policy", "open",
         "--page-policy", "4k", "--frag", "0.5", "--subrow", "poa",
         "--subrow-dedicated", "3", "--seed", "7", "--imp"});
    const SystemConfig cfg = toConfig(options);
    EXPECT_TRUE(cfg.mc.tempoEnabled);
    EXPECT_EQ(cfg.mc.sched, SchedKind::Bliss);
    EXPECT_EQ(cfg.dram.rowPolicy, RowPolicyKind::Open);
    EXPECT_EQ(cfg.vm.policy, PagePolicy::Base4K);
    EXPECT_DOUBLE_EQ(cfg.os.fragLevel, 0.5);
    EXPECT_EQ(cfg.dram.subRowAlloc, SubRowAlloc::POA);
    EXPECT_EQ(cfg.dram.subRowsForPrefetch, 3u);
    EXPECT_EQ(cfg.seed, 7u);
    EXPECT_TRUE(cfg.imp.enabled);
}

TEST(CliOptions, ToConfigDefaultsMatchBaseline)
{
    const SystemConfig cfg = toConfig(parse({}));
    const SystemConfig baseline =
        SystemConfig::skylakeScaled().withSeed(42);
    EXPECT_EQ(cfg.mc.tempoEnabled, baseline.mc.tempoEnabled);
    EXPECT_EQ(cfg.dram.rowPolicy, baseline.dram.rowPolicy);
    EXPECT_EQ(cfg.vm.policy, baseline.vm.policy);
    EXPECT_EQ(cfg.dram.subRowAlloc, SubRowAlloc::None);
}

} // namespace
} // namespace tempo::cli
