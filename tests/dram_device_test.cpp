#include <gtest/gtest.h>

#include "dram/dram.hh"

namespace tempo {
namespace {

TEST(DramDevice, CountsRowEvents)
{
    DramConfig cfg;
    cfg.rowPolicy = RowPolicyKind::Open;
    DramDevice dram(cfg);
    const Addr a = 0;
    dram.access(a, false, false, 0, 0, 0);             // miss
    dram.access(a, false, false, 0, 1000, 0);          // hit
    dram.access(a + cfg.rowBufferBytes * cfg.channels * 64, false,
                false, 0, 2000, 0);                    // conflict
    EXPECT_EQ(dram.rowMisses(), 1u);
    EXPECT_EQ(dram.rowHits(), 1u);
    EXPECT_EQ(dram.rowConflicts(), 1u);
    EXPECT_EQ(dram.accesses(), 3u);
}

TEST(DramDevice, WouldRowHitMatchesAccessOutcome)
{
    DramConfig cfg;
    cfg.rowPolicy = RowPolicyKind::Open;
    DramDevice dram(cfg);
    for (Addr addr = 0; addr < (1ull << 24); addr += 0x1357 * 64) {
        const bool predicted = dram.wouldRowHit(addr);
        const DramResult result =
            dram.access(addr, false, false, 0, 1u << 30, 0);
        EXPECT_EQ(predicted, result.event == RowEvent::Hit) << addr;
    }
}

TEST(DramDevice, SameRowAccessesHitAcrossLines)
{
    DramConfig cfg;
    cfg.rowPolicy = RowPolicyKind::Open;
    DramDevice dram(cfg);
    const Addr base = 32 * cfg.rowBufferBytes * cfg.totalBanks();
    dram.access(base, false, false, 0, 0, 0);
    const DramResult second =
        dram.access(base + kLineBytes, false, false, 0, 1000, 0);
    EXPECT_EQ(second.event, RowEvent::Hit);
}

TEST(DramDevice, BanksOperateIndependently)
{
    DramConfig cfg;
    cfg.rowPolicy = RowPolicyKind::Open;
    DramDevice dram(cfg);
    // Two addresses in different banks can both start at their request
    // time (no serialization through a shared resource at this layer).
    const DramResult a = dram.access(0, false, false, 0, 0, 0);
    // Pick a far-away address: different channel/bank.
    const Addr other = cfg.rowBufferBytes; // next channel by map layout
    const DramResult b = dram.access(other, false, false, 0, 0, 0);
    EXPECT_EQ(a.start, 0u);
    EXPECT_EQ(b.start, 0u);
}

TEST(DramDevice, DynamicEnergyGrowsWithTraffic)
{
    DramConfig cfg;
    DramDevice dram(cfg);
    const double e0 = dram.dynamicEnergy();
    dram.access(0, false, false, 0, 0, 0);
    const double e1 = dram.dynamicEnergy();
    dram.access(1ull << 20, true, false, 0, 1000, 0);
    const double e2 = dram.dynamicEnergy();
    EXPECT_GT(e1, e0);
    EXPECT_GT(e2, e1);
}

TEST(DramDevice, ReportContainsKeyStats)
{
    DramConfig cfg;
    DramDevice dram(cfg);
    dram.access(0, false, false, 0, 0, 0);
    stats::Report report;
    dram.report(report);
    EXPECT_TRUE(report.has("row_hits"));
    EXPECT_TRUE(report.has("row_hit_rate"));
    EXPECT_TRUE(report.has("activates"));
    EXPECT_TRUE(report.has("dynamic_energy"));
    EXPECT_EQ(report.get("activates"), 1.0);
}

TEST(DramDevice, BankReadyAtAdvancesAfterAccess)
{
    DramConfig cfg;
    cfg.rowPolicy = RowPolicyKind::Open;
    DramDevice dram(cfg);
    EXPECT_EQ(dram.bankReadyAt(0), 0u);
    const DramResult result = dram.access(0, false, false, 0, 0, 0);
    EXPECT_GE(dram.bankReadyAt(0), result.complete);
}

class DramPolicySweep : public ::testing::TestWithParam<RowPolicyKind>
{
};

TEST_P(DramPolicySweep, RandomTrafficNeverBreaksInvariants)
{
    DramConfig cfg;
    cfg.rowPolicy = GetParam();
    DramDevice dram(cfg);
    Cycle now = 0;
    std::uint64_t x = 88172645463325252ull;
    for (int i = 0; i < 5000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const Addr addr = (x % (1ull << 32)) & ~(kLineBytes - 1);
        const DramResult result =
            dram.access(addr, (x >> 40) & 1, false, 0, now, 0);
        EXPECT_GE(result.start, now);
        EXPECT_GT(result.complete, result.start);
        now += (x >> 33) % 64;
    }
    EXPECT_EQ(dram.accesses(), 5000u);
    // Activations + precharges consistent: every conflict precharges,
    // every non-hit activates.
    EXPECT_EQ(dram.energy().activates,
              dram.rowMisses() + dram.rowConflicts());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, DramPolicySweep,
                         ::testing::Values(RowPolicyKind::Open,
                                           RowPolicyKind::Closed,
                                           RowPolicyKind::Adaptive));

} // namespace
} // namespace tempo
