/**
 * @file
 * Unit tests for the registry's timing-aware (T-SKID), metadata-managed
 * (MISB) and temporal (Triangel-style) prefetch engines — the action
 * streams they emit through the Prefetcher interface, independent of
 * the core that dispatches them.
 */

#include <gtest/gtest.h>

#include "prefetch/misb.hh"
#include "prefetch/temporal.hh"
#include "prefetch/tskid.hh"

namespace tempo {
namespace {

MemRef
ref(Addr vaddr, std::uint32_t stream = 1)
{
    MemRef r;
    r.vaddr = vaddr;
    r.stream = stream;
    return r;
}

TEST(Tskid, HoldsPrefetchUntilLearnedReleaseTime)
{
    TskidConfig cfg;
    cfg.confidenceThreshold = 1;
    cfg.degree = 1;
    cfg.distance = 4;
    cfg.leadCycles = 100;
    TskidPrefetcher pf(cfg);
    std::vector<PrefetchAction> out;

    // Stride 64, one touch every 1000 cycles: the engine learns the
    // interval and holds the prefetch until (4 intervals - lead).
    pf.observe(ref(0x1000), 0, out);
    pf.observe(ref(0x1040), 1000, out);
    pf.observe(ref(0x1080), 2000, out);
    EXPECT_TRUE(out.empty()); // observe never emits directly
    EXPECT_EQ(pf.scheduled(), 1u);

    pf.drain(2000, out);
    EXPECT_TRUE(out.empty()); // release = 2000 + 4*1000 - 100
    pf.drain(5899, out);
    EXPECT_TRUE(out.empty());
    pf.drain(5900, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].kind, PrefetchAction::Kind::Data);
    EXPECT_EQ(out[0].addr, 0x1080 + 4 * 64u);
    EXPECT_EQ(pf.released(), 1u);
}

TEST(Tskid, UnknownIntervalDegradesToFireImmediately)
{
    TskidConfig cfg;
    cfg.confidenceThreshold = 1;
    cfg.degree = 1;
    TskidPrefetcher pf(cfg);
    std::vector<PrefetchAction> out;
    // All touches at the same cycle: interval EWMA 0, so the predicted
    // use is inside the lead window and release clamps to now.
    pf.observe(ref(0x2000), 50, out);
    pf.observe(ref(0x2040), 50, out);
    pf.observe(ref(0x2080), 50, out);
    pf.drain(50, out);
    ASSERT_EQ(out.size(), 1u);
}

TEST(Tskid, PendingCapDropsExcessPrefetches)
{
    TskidConfig cfg;
    cfg.confidenceThreshold = 1;
    cfg.degree = 4;
    cfg.maxPending = 1;
    cfg.leadCycles = 0;
    TskidPrefetcher pf(cfg);
    std::vector<PrefetchAction> out;
    pf.observe(ref(0x3000), 0, out);
    pf.observe(ref(0x3040), 1000, out);
    pf.observe(ref(0x3080), 2000, out);
    // Degree 4 wants 4 prefetches; slot 1 holds one, the rest drop.
    EXPECT_EQ(pf.scheduled(), 1u);
    EXPECT_EQ(pf.pendingDrops(), 1u);
}

TEST(Tskid, DrainReleasesInTimeOrder)
{
    TskidConfig cfg;
    cfg.confidenceThreshold = 1;
    cfg.degree = 2;
    cfg.distance = 4;
    cfg.leadCycles = 0;
    TskidPrefetcher pf(cfg);
    std::vector<PrefetchAction> out;
    pf.observe(ref(0x4000), 0, out);
    pf.observe(ref(0x4040), 100, out);
    pf.observe(ref(0x4080), 200, out);
    EXPECT_EQ(pf.scheduled(), 2u);
    // distance 4 releases before distance 5 (4 vs 5 intervals out).
    pf.drain(1u << 30, out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].addr, 0x4080 + 4 * 64u);
    EXPECT_EQ(out[1].addr, 0x4080 + 5 * 64u);
}

TEST(Misb, FirstPredictionCostsMetadataFetch)
{
    MisbConfig cfg;
    cfg.trainThreshold = 1;
    cfg.degree = 1;
    MisbPrefetcher pf(cfg);
    std::vector<PrefetchAction> out;

    pf.observe(ref(0x1000), 0, out);
    pf.observe(ref(0x2000), 0, out); // records pair 0x1000 -> 0x2000
    EXPECT_TRUE(out.empty());

    // Re-trigger on 0x1000: the pair exists off-chip but its metadata
    // is not cached on chip — the engine asks for a metadata fetch
    // instead of issuing the data prefetch.
    pf.observe(ref(0x1000), 0, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].kind, PrefetchAction::Kind::Metadata);
    EXPECT_EQ(out[0].addr, 0x1000u);
    EXPECT_EQ(pf.metadataMisses(), 1u);
    EXPECT_EQ(pf.metadataHits(), 0u);

    // Round-trip the pattern once more; now the metadata is cached and
    // the data prefetch issues.
    out.clear();
    pf.observe(ref(0x2000), 0, out);
    out.clear();
    pf.observe(ref(0x1000), 0, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].kind, PrefetchAction::Kind::Data);
    EXPECT_EQ(out[0].addr, 0x2000u);
    EXPECT_EQ(pf.metadataHits(), 1u);
}

TEST(Misb, TrainThresholdGatesPredictions)
{
    MisbConfig cfg;
    cfg.trainThreshold = 10;
    MisbPrefetcher pf(cfg);
    std::vector<PrefetchAction> out;
    for (int i = 0; i < 9; ++i) {
        pf.observe(ref(0x1000 + (i % 2) * 0x1000), 0, out);
        EXPECT_TRUE(out.empty()) << i;
    }
}

TEST(Misb, ChainChasesSuccessorsUpToDegree)
{
    MisbConfig cfg;
    cfg.trainThreshold = 1;
    cfg.degree = 2;
    MisbPrefetcher pf(cfg);
    std::vector<PrefetchAction> out;
    // Train A->B->C twice: the first lap records pairs, the second
    // caches the metadata (each trigger's first prediction is a
    // metadata fetch).
    for (int lap = 0; lap < 2; ++lap) {
        for (Addr a : {0x1000, 0x2000, 0x3000}) {
            out.clear();
            pf.observe(ref(a), 0, out);
        }
    }
    out.clear();
    pf.observe(ref(0x1000), 0, out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].kind, PrefetchAction::Kind::Data);
    EXPECT_EQ(out[0].addr, 0x2000u);
    EXPECT_EQ(out[1].kind, PrefetchAction::Kind::Data);
    EXPECT_EQ(out[1].addr, 0x3000u);
}

TEST(Misb, PairTablePressureEvicts)
{
    MisbConfig cfg;
    cfg.trainThreshold = 1;
    cfg.pairEntries = 1; // every pair maps to the same slot
    MisbPrefetcher pf(cfg);
    std::vector<PrefetchAction> out;
    pf.observe(ref(0x1000), 0, out);
    pf.observe(ref(0x2000), 0, out); // pair 0x1000 -> 0x2000
    pf.observe(ref(0x5000), 0, out); // pair 0x2000 -> 0x5000 evicts it
    stats::Report report;
    pf.report(report);
    EXPECT_EQ(report.get("pair_evictions"), 1.0);
    // The evicted trigger can no longer predict.
    out.clear();
    pf.observe(ref(0x1000), 0, out);
    EXPECT_TRUE(out.empty());
}

TEST(Temporal, PredictsRepeatedSuccessor)
{
    TemporalConfig cfg;
    cfg.trainThreshold = 1;
    cfg.confidenceThreshold = 1;
    cfg.degree = 1;
    TemporalPrefetcher pf(cfg);
    std::vector<PrefetchAction> out;
    pf.observe(ref(0x1000), 0, out);
    pf.observe(ref(0x2000), 0, out); // pair 0x1000 -> 0x2000
    out.clear();
    pf.observe(ref(0x1000), 0, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].kind, PrefetchAction::Kind::Data);
    EXPECT_EQ(out[0].addr, 0x2000u);
    EXPECT_EQ(pf.predictions(), 1u);
}

TEST(Temporal, MispredictMustReconfirmBeforeTrusting)
{
    TemporalConfig cfg;
    cfg.trainThreshold = 1;
    cfg.confidenceThreshold = 2;
    cfg.degree = 1;
    TemporalPrefetcher pf(cfg);
    std::vector<PrefetchAction> out;
    // Two confirmations of A->B reach the threshold...
    pf.observe(ref(0x1000), 0, out);
    pf.observe(ref(0x2000), 0, out);
    pf.observe(ref(0x1000), 0, out);
    pf.observe(ref(0x2000), 0, out);
    out.clear();
    pf.observe(ref(0x1000), 0, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].addr, 0x2000u);
    // ...a mispredict (A->C) decays confidence below it...
    out.clear();
    pf.observe(ref(0x5000), 0, out);
    out.clear();
    pf.observe(ref(0x1000), 0, out);
    EXPECT_TRUE(out.empty());
}

TEST(Temporal, SamplerWithholdsColdStreams)
{
    TemporalConfig cfg;
    cfg.trainThreshold = 100;
    cfg.confidenceThreshold = 1;
    TemporalPrefetcher pf(cfg);
    std::vector<PrefetchAction> out;
    for (int i = 0; i < 50; ++i) {
        pf.observe(ref(0x1000 + (i % 2) * 0x1000), 0, out);
        EXPECT_TRUE(out.empty()) << i;
    }
}

TEST(Temporal, TablePressureEvictsAndCounts)
{
    TemporalConfig cfg;
    cfg.trainThreshold = 1;
    cfg.tableEntries = 1;
    TemporalPrefetcher pf(cfg);
    std::vector<PrefetchAction> out;
    pf.observe(ref(0x1000), 0, out);
    pf.observe(ref(0x2000), 0, out); // entry: 0x1000 -> 0x2000
    pf.observe(ref(0x5000), 0, out); // entry: 0x2000 -> 0x5000 (evict)
    stats::Report report;
    pf.report(report);
    EXPECT_EQ(report.get("evictions"), 1.0);
}

} // namespace
} // namespace tempo
