/**
 * @file
 * Observability subsystem tests (src/obs/): the disabled path changes
 * nothing, the Chrome trace round-trips and nests cleanly, the
 * lifecycle audit sums to the aggregate counters it claims to break
 * down, and time-series samples survive the checkpoint journal.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/checkpoint.hh"
#include "core/experiment.hh"
#include "core/tempo_system.hh"
#include "obs/obs.hh"
#include "stats/json.hh"

namespace tempo {
namespace {

constexpr std::uint64_t kRefs = 20000;

SystemConfig
tempoCfg()
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    cfg.withTempo(true);
    return cfg;
}

/** Run one point under @p obs_cfg and restore the disabled default, so
 * a failing test never leaks observability into its neighbours. */
RunResult
runWith(const obs::Config &obs_cfg, const SystemConfig &cfg,
        const std::string &workload, std::uint64_t warmup = 0)
{
    obs::configure(obs_cfg);
    TempoSystem system(cfg, makeWorkload(workload, cfg.seed));
    RunResult result = system.run(kRefs, warmup);
    obs::configure(obs::Config{});
    return result;
}

std::string
reportText(const RunResult &result)
{
    std::ostringstream os;
    result.report.printText(os);
    return os.str();
}

std::string
benchDump(const RunResult &result)
{
    const std::vector<stats::BenchPoint> points{
        toBenchPoint("mcf", {}, result)};
    return stats::benchJson("obs", kRefs, 42, points).dump();
}

// With observability off, output is byte-identical to a run that never
// touched the subsystem — including after an instrumented run has
// configured and torn it down — and the instrumented run itself leaves
// the simulated machine (timing, counters) untouched.
TEST(ObsDisabled, OutputIsByteIdentical)
{
    const SystemConfig cfg = tempoCfg();
    const RunResult off = runWith(obs::Config{}, cfg, "mcf");

    obs::Config on_cfg;
    on_cfg.trace = true;
    on_cfg.timeseriesWindow = 5000;
    const RunResult on = runWith(on_cfg, cfg, "mcf");

    const RunResult off_again = runWith(obs::Config{}, cfg, "mcf");

    EXPECT_EQ(reportText(off), reportText(off_again));
    EXPECT_EQ(benchDump(off), benchDump(off_again));
    EXPECT_FALSE(off.report.has("obs.walks"));
    EXPECT_EQ(benchDump(off).find("\"timeseries\""), std::string::npos);
    EXPECT_EQ(off.obs, nullptr);

    // Observation does not perturb the simulation.
    EXPECT_EQ(off.runtime, on.runtime);
    EXPECT_EQ(off.core.walks, on.core.walks);
    EXPECT_EQ(off.dramPtw, on.dramPtw);
    EXPECT_DOUBLE_EQ(off.energy.total(), on.energy.total());
    EXPECT_TRUE(on.report.has("obs.walks"));
}

// The exported Chrome trace parses as JSON; per (pid, tid) track every
// "E" closes a matching "B" of the same name, timestamps are monotone
// in array order, and walk ids join the walker and prefetch processes.
TEST(ObsTrace, ChromeTraceRoundTrips)
{
    obs::Config obs_cfg;
    obs_cfg.trace = true;
    obs_cfg.timeseriesWindow = 20000;
    const RunResult result = runWith(obs_cfg, tempoCfg(), "mcf");
    ASSERT_NE(result.obs, nullptr);
    EXPECT_GT(result.obs->events.size(), 0u);
    EXPECT_EQ(result.obs->droppedEvents, 0u);

    std::ostringstream os;
    obs::writeChromeTrace(os, *result.obs);
    const stats::JsonValue doc = stats::parseJson(os.str());
    const stats::JsonValue &events = doc.at("traceEvents");
    ASSERT_EQ(events.kind, stats::JsonValue::Kind::Array);
    EXPECT_GT(events.elements.size(), 0u);

    struct Track {
        std::uint64_t lastTs = 0;
        std::vector<std::string> open;
    };
    std::map<std::pair<std::uint64_t, std::uint64_t>, Track> tracks;
    std::set<std::uint64_t> walk_tids;
    std::set<std::uint64_t> prefetch_tids;
    bool saw_counter = false;
    for (const stats::JsonValue &e : events.elements) {
        const std::string ph = e.at("ph").asString();
        if (ph == "M")
            continue;
        const std::uint64_t pid = e.at("pid").asUint64();
        const std::uint64_t tid = e.at("tid").asUint64();
        Track &track = tracks[{pid, tid}];
        const std::uint64_t ts = e.at("ts").asUint64();
        EXPECT_GE(ts, track.lastTs) << "pid " << pid << " tid " << tid;
        track.lastTs = ts;
        const std::string name = e.at("name").asString();
        if (ph == "B") {
            track.open.push_back(name);
            if (pid == 1 && name == "walk")
                walk_tids.insert(tid);
            if (pid == 3 && name == "tempo_prefetch")
                prefetch_tids.insert(tid);
        } else if (ph == "E") {
            ASSERT_FALSE(track.open.empty())
                << "unmatched E on pid " << pid << " tid " << tid;
            EXPECT_EQ(track.open.back(), name);
            track.open.pop_back();
        } else if (ph == "C") {
            saw_counter = true;
        }
    }
    for (const auto &[key, track] : tracks) {
        EXPECT_TRUE(track.open.empty())
            << "span left open on pid " << key.first << " tid "
            << key.second;
    }

    // TEMPO runs produce walk and prefetch spans that share walk-id
    // tids, so the two processes join in the viewer.
    EXPECT_FALSE(walk_tids.empty());
    EXPECT_FALSE(prefetch_tids.empty());
    bool joined = false;
    for (const std::uint64_t tid : prefetch_tids)
        joined = joined || walk_tids.count(tid) > 0;
    EXPECT_TRUE(joined);
    EXPECT_TRUE(saw_counter);
}

// The lifecycle audit counts exactly what the aggregate counters count:
// the replay-class breakdown sums to replay_after_dram_walk, and the
// prefetch taxonomy sums to the MC's issued/dropped totals.
TEST(ObsAudit, BreakdownsSumToAggregates)
{
    obs::Config obs_cfg;
    obs_cfg.timeseriesWindow = 10000; // audit on, tracing off
    for (const std::uint64_t warmup : {std::uint64_t(0),
                                       std::uint64_t(5000)}) {
        const RunResult r =
            runWith(obs_cfg, tempoCfg(), "mcf", warmup);
        SCOPED_TRACE("warmup " + std::to_string(warmup));

        const double replay_sum = r.report.get("obs.replay_private_hit")
            + r.report.get("obs.replay_llc_hit")
            + r.report.get("obs.replay_merged")
            + r.report.get("obs.replay_row_hit")
            + r.report.get("obs.replay_array");
        EXPECT_EQ(static_cast<std::uint64_t>(replay_sum),
                  r.core.replayAfterDramWalk);

        EXPECT_EQ(r.report.get("obs.walks"),
                  static_cast<double>(r.core.walks));
        EXPECT_EQ(r.report.get("obs.walks_leaf_dram"),
                  static_cast<double>(r.core.walksWithLeafDram));

        const double taxonomy = r.report.get("obs.prefetch_useful")
            + r.report.get("obs.prefetch_late")
            + r.report.get("obs.prefetch_useless");
        EXPECT_EQ(r.report.get("obs.prefetch_issued"),
                  r.report.get("mc.tempo.prefetches_issued"));
        EXPECT_EQ(taxonomy,
                  r.report.get("mc.tempo.prefetches_issued"));
        EXPECT_EQ(r.report.get("obs.prefetch_dropped"),
                  r.report.get("mc.tempo.prefetches_dropped"));
        EXPECT_GT(r.report.get("obs.prefetch_issued"), 0.0);
    }
}

// On a baseline (no-TEMPO) machine the taxonomy is exactly zero.
TEST(ObsAudit, BaselineIssuesNoPrefetches)
{
    obs::Config obs_cfg;
    obs_cfg.timeseriesWindow = 10000;
    const RunResult r = runWith(obs_cfg, SystemConfig::skylakeScaled(),
                                "mcf");
    EXPECT_EQ(r.report.get("obs.prefetch_issued"), 0.0);
    EXPECT_EQ(r.report.get("obs.prefetch_useful"), 0.0);
    EXPECT_EQ(r.report.get("obs.prefetch_late"), 0.0);
    EXPECT_EQ(r.report.get("obs.prefetch_useless"), 0.0);
    EXPECT_EQ(r.report.get("obs.prefetch_dropped"), 0.0);
}

// Time-series columns stay parallel, surface in the bench JSON, and
// survive the checkpoint journal byte-identically (with tracing left
// off on the restored side, so resume never rewrites trace files).
TEST(ObsTimeseries, ColumnsAndCheckpointRoundTrip)
{
    obs::Config obs_cfg;
    obs_cfg.timeseriesWindow = 2000;
    const RunResult r = runWith(obs_cfg, tempoCfg(), "mcf");
    ASSERT_NE(r.obs, nullptr);
    const obs::TimeSeries &ts = r.obs->timeseries;
    ASSERT_FALSE(ts.empty());
    EXPECT_EQ(ts.windowCycles, 2000u);
    ASSERT_EQ(ts.columns.size(), 6u);
    EXPECT_EQ(ts.columns[0].first, "cycle");
    const std::size_t samples = ts.columns[0].second.size();
    EXPECT_GT(samples, 1u);
    for (const auto &[name, values] : ts.columns)
        EXPECT_EQ(values.size(), samples) << name;

    const std::string dump = benchDump(r);
    EXPECT_NE(dump.find("\"timeseries\""), std::string::npos);
    EXPECT_NE(dump.find("\"window_cycles\": 2000"), std::string::npos);
    EXPECT_NE(dump.find("\"row_hit_rate\""), std::string::npos);

    const std::string encoded = encodeRunResult(r).dumpCompact();
    const RunResult decoded =
        decodeRunResult(stats::parseJson(encoded));
    ASSERT_NE(decoded.obs, nullptr);
    EXPECT_FALSE(decoded.obs->cfg.trace);
    EXPECT_EQ(encodeRunResult(decoded).dumpCompact(), encoded);
    EXPECT_EQ(benchDump(decoded), dump);
}

// Trace categories filter events but never the audit counters.
TEST(ObsTrace, FilterNarrowsEventsNotCounters)
{
    obs::Config obs_cfg;
    obs_cfg.trace = true;
    obs_cfg.categories = obs::parseCategories("walk,replay");
    const RunResult filtered = runWith(obs_cfg, tempoCfg(), "mcf");
    obs_cfg.categories = obs::kAllCategories;
    const RunResult full = runWith(obs_cfg, tempoCfg(), "mcf");
    ASSERT_NE(filtered.obs, nullptr);
    ASSERT_NE(full.obs, nullptr);
    EXPECT_LT(filtered.obs->events.size(), full.obs->events.size());
    EXPECT_GT(filtered.obs->events.size(), 0u);
    EXPECT_EQ(filtered.report.get("obs.prefetch_issued"),
              full.report.get("obs.prefetch_issued"));

    EXPECT_THROW(obs::parseCategories("walk,banana"),
                 std::invalid_argument);
    EXPECT_EQ(obs::parseCategories("all"), obs::kAllCategories);
}

// A tiny ring capacity drops (and counts) the oldest events instead of
// allocating, and the exporter still emits a cleanly-nesting document.
TEST(ObsTrace, RingOverflowDropsOldest)
{
    obs::Config obs_cfg;
    obs_cfg.trace = true;
    obs_cfg.traceCapacity = 256;
    const RunResult r = runWith(obs_cfg, tempoCfg(), "mcf");
    ASSERT_NE(r.obs, nullptr);
    EXPECT_EQ(r.obs->events.size(), 256u);
    EXPECT_GT(r.obs->droppedEvents, 0u);
    EXPECT_EQ(r.report.get("obs.trace_dropped"),
              static_cast<double>(r.obs->droppedEvents));

    std::ostringstream os;
    obs::writeChromeTrace(os, *r.obs);
    EXPECT_NO_THROW(stats::parseJson(os.str()));
}

} // namespace
} // namespace tempo
