/**
 * @file
 * TEMPO x prefetcher interaction matrix (Sec. 4.2 generalized). The
 * paper's orthogonality argument — TEMPO prefetches the *translation
 * replay target* from the memory controller, so it composes with any
 * core-side data prefetcher — is tested here across the whole registry:
 * {none, stride, imp, tskid, misb, temporal} x {TEMPO off, TEMPO on}
 * over the big-data workload set.
 *
 * For every engine the table reports TEMPO's speedup on top of that
 * engine (the paper's claim: positive everywhere, largest where the
 * engine's extra page-table walks feed TEMPO) plus the engine's
 * prefetch accuracy from the registry taxonomy (useful / issued).
 *
 * Emits tempo-bench-1 JSON (BENCH_fig_matrix.json) with one point per
 * (engine, tempo, workload) cell; engine cells carry the full
 * prefetch.<name>.* taxonomy so the CI matrix-smoke job can check
 * useful + late + useless == issued on real runs.
 */

#include "bench_common.hh"

#include <array>

int
main()
{
    using namespace tempo;
    using namespace tempo::bench;

    header("Interaction matrix",
           "TEMPO x {none, stride, imp, tskid, misb, temporal}",
           "TEMPO helps under every engine (Sec. 4.2 orthogonality); "
           "prefetch-heavy engines walk more, so TEMPO recovers more");

    const std::uint64_t n = refs();
    const std::vector<std::string> &names = bigDataWorkloadNames();
    constexpr std::array<const char *, 6> kEngines = {
        "none", "stride", "imp", "tskid", "misb", "temporal",
    };

    // 2 * |engines| configs; "none" still goes through withPrefetchers
    // so every cell uses explicit-registry resolution (and the engine
    // cells report the prefetch.<name>.* taxonomy).
    std::vector<ExperimentPoint> points;
    for (const std::string &name : names) {
        for (const char *engine : kEngines) {
            for (const bool tempo : {false, true}) {
                SystemConfig cfg = SystemConfig::skylakeScaled();
                cfg.withPrefetchers(engine);
                if (cfg.prefetch.engines.empty()) {
                    cfg.imp.enabled = false;
                    cfg.stride.enabled = false;
                }
                cfg.withTempo(tempo);
                points.push_back(point(cfg, name, n));
            }
        }
    }

    JsonRecorder json("fig_matrix");
    const std::vector<RunResult> results = runAll(std::move(points));

    std::printf("%-10s | %-8s | %12s %12s %12s %12s\n", "workload",
                "engine", "TEMPO dC%", "accuracy%", "late%", "energy%");
    const std::size_t cells = kEngines.size() * 2;
    for (std::size_t w = 0; w < names.size(); ++w) {
        for (std::size_t e = 0; e < kEngines.size(); ++e) {
            const RunResult &base = results[w * cells + 2 * e];
            const RunResult &tempo = results[w * cells + 2 * e + 1];
            const std::string prefix =
                std::string("prefetch.") + kEngines[e] + ".";
            const double issued = rget(base, prefix + "issued");
            const double useful = rget(base, prefix + "useful");
            const double late = rget(base, prefix + "late");
            std::printf("%-10s | %-8s | %12.1f %12.1f %12.1f %12.1f\n",
                        names[w].c_str(), kEngines[e],
                        pct(tempo.speedupOver(base)),
                        issued > 0 ? pct(useful / issued) : 0.0,
                        issued > 0 ? pct(late / issued) : 0.0,
                        pct(tempo.energySavingOver(base)));
            json.add(names[w],
                     {{"prefetch.engines", kEngines[e]},
                      {"mc.tempo", "false"}}, base);
            json.add(names[w],
                     {{"prefetch.engines", kEngines[e]},
                      {"mc.tempo", "true"}}, tempo);
        }
    }
    json.write(n);
    footer();
    return 0;
}
