/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot components:
 * useful when modifying the library to check that simulation throughput
 * has not regressed. These measure the *simulator's* speed, not the
 * simulated machine's.
 */

#include <benchmark/benchmark.h>

#include "cache/set_assoc.hh"
#include "common/event_queue.hh"
#include "common/rng.hh"
#include "core/tempo_system.hh"
#include "dram/dram.hh"
#include "vm/page_table.hh"
#include "vm/tlb.hh"

namespace {

using namespace tempo;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(static_cast<Cycle>(i * 7 % 500),
                        [&sink] { ++sink; });
        eq.runAll();
        benchmark::DoNotOptimize(sink);
    }
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_SetAssocCacheLookup(benchmark::State &state)
{
    SetAssocCache cache(256 * 1024, 16);
    Rng rng(1);
    for (int i = 0; i < 4096; ++i)
        cache.insert(rng.below(1ull << 30));
    Rng probe(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.lookup(probe.below(1ull << 30)));
    }
}
BENCHMARK(BM_SetAssocCacheLookup);

void
BM_DramAccess(benchmark::State &state)
{
    DramDevice dram{DramConfig{}};
    Rng rng(3);
    Cycle now = 0;
    for (auto _ : state) {
        const Addr addr = rng.below(1ull << 34) & ~(kLineBytes - 1);
        benchmark::DoNotOptimize(
            dram.access(addr, false, false, 0, now, 0));
        now += 8;
    }
}
BENCHMARK(BM_DramAccess);

void
BM_TlbLookup(benchmark::State &state)
{
    Tlb tlb{TlbConfig{}};
    Rng rng(4);
    for (int i = 0; i < 2000; ++i)
        tlb.fill(rng.below(1ull << 36), PageSize::Page4K);
    Rng probe(5);
    for (auto _ : state)
        benchmark::DoNotOptimize(tlb.lookup(probe.below(1ull << 36)));
}
BENCHMARK(BM_TlbLookup);

void
BM_PageTableWalk(benchmark::State &state)
{
    OsMemory os{OsMemoryConfig{}};
    PageTable table(os);
    Rng rng(6);
    std::vector<Addr> vaddrs;
    for (int i = 0; i < 4096; ++i) {
        const Addr vaddr = rng.below(1ull << 40) & ~(kPageBytes - 1);
        if (!table.translate(vaddr).valid) {
            table.map(vaddr, PageSize::Page4K,
                      os.allocFrame(PageSize::Page4K));
        }
        vaddrs.push_back(vaddr);
    }
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.walk(vaddrs[i]));
        i = (i + 1) % vaddrs.size();
    }
}
BENCHMARK(BM_PageTableWalk);

void
BM_SimulatedRefsPerSecond(benchmark::State &state)
{
    // End-to-end simulator throughput: simulated references per second.
    for (auto _ : state) {
        SystemConfig cfg = SystemConfig::skylakeScaled();
        TempoSystem system(cfg, makeWorkload("xsbench", 1));
        benchmark::DoNotOptimize(system.run(10000));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_SimulatedRefsPerSecond)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
