/**
 * @file
 * Ablation study of TEMPO's design choices (DESIGN.md Sec. 4): which
 * part of the mechanism buys what. Variants, each measured against the
 * common no-TEMPO baseline on every big-data workload:
 *
 *   full        — row-buffer + LLC prefetch, Tx-Q grouping, holds
 *   row-only    — prefetch opens the DRAM row but never fills the LLC
 *                 (paper Sec. 2.2 / Fig. 3 distinguishes these stages)
 *   no-grouping — FR-FCFS without the Sec. 4.3(b) PT/prefetch groups
 *   no-holds    — no anticipation delay, no grace period
 *   slow-engine — Prefetch Engine latency 2 -> 20 cycles (how much
 *                 timeliness headroom the slack window leaves)
 *   drop-all    — prefetches always dropped (sanity: must equal ~0)
 */

#include "bench_common.hh"

namespace {

using namespace tempo;

SystemConfig
variant(const std::string &name)
{
    SystemConfig cfg = SystemConfig::skylakeScaled();
    cfg.withTempo(true);
    if (name == "row-only") {
        cfg.mc.tempoLlcFill = false;
    } else if (name == "no-grouping") {
        cfg.mc.tempoGrouping = false;
    } else if (name == "no-holds") {
        cfg.mc.tempoPtRowHold = 0;
        cfg.mc.tempoGracePeriod = 0;
    } else if (name == "slow-engine") {
        cfg.mc.prefetchEngineDelay = 20;
    } else if (name == "drop-all") {
        cfg.mc.prefetchDropDepth = 0;
    }
    return cfg;
}

} // namespace

int
main()
{
    using namespace tempo::bench;

    header("Ablation", "TEMPO variants vs common baseline",
           "full >= row-only > drop-all ~ 0; grouping and engine speed "
           "matter less than the LLC fill");

    const char *variants[] = {"full", "row-only", "no-grouping",
                              "no-holds", "slow-engine", "drop-all"};
    const std::size_t num_variants = std::size(variants);

    std::printf("%-10s", "workload");
    for (const char *v : variants)
        std::printf(" %12s", v);
    std::printf("\n");

    const std::vector<std::string> &names =
        tempo::bigDataWorkloadNames();
    const SystemConfig base_cfg = SystemConfig::skylakeScaled();
    std::vector<tempo::ExperimentPoint> points;
    for (const std::string &name : names) {
        points.push_back(tempo::bench::point(base_cfg, name, refs()));
        for (const char *v : variants)
            points.push_back(
                tempo::bench::point(variant(v), name, refs()));
    }
    JsonRecorder json("ablation_tempo");
    const std::vector<tempo::RunResult> results =
        runAll(std::move(points));

    std::size_t idx = 0;
    for (const std::string &name : names) {
        const tempo::RunResult &base = results[idx++];
        json.add(name, {{"variant", "baseline"}}, base);
        std::printf("%-10s", name.c_str());
        for (std::size_t v = 0; v < num_variants; ++v) {
            const tempo::RunResult &result = results[idx++];
            std::printf(" %11.1f%%", pct(result.speedupOver(base)));
            json.add(name, {{"variant", variants[v]}}, result);
        }
        std::printf("\n");
    }
    json.write(refs());
    footer();
    return 0;
}
