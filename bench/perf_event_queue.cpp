/**
 * @file
 * perf_event_queue: events/sec of the calendar-queue EventQueue vs the
 * binary-heap + std::function reference implementation it replaced.
 *
 *   perf_event_queue [--events N]
 *
 * Three patterns modelled on the simulator's real scheduling mix:
 *
 *   hot    — every delta <= ~300 cycles (tRC-ish), the common case the
 *            wheel is sized for; each event reschedules a successor.
 *   mixed  — 90% near deltas, 10% far (refresh/row-hold style), so the
 *            overflow tier and its promotion path get exercised.
 *   fanout — bursts of same-cycle events (MSHR release storms).
 *
 * Callbacks capture ~32 bytes so std::function must heap-allocate in
 * the reference queue — the honest old cost — while the new queue's
 * inline storage absorbs them. Output is plain text plus a final
 * geomean speedup line; the CI perf-smoke job prints it informationally.
 */

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/event_queue.hh"
#include "common/heap_event_queue.hh"

namespace {

using tempo::Cycle;

/** splitmix64: deterministic, seedable, no <random> state overhead. */
struct Rng {
    std::uint64_t x;
    std::uint64_t
    next()
    {
        std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }
};

/** Per-event payload: big enough that std::function heap-allocates. */
struct Payload {
    std::uint64_t acc = 0;
    std::uint64_t rngState = 0;
    std::uint64_t spare[2] = {};
};

// Each pattern seeds `width` self-sustaining event chains and runs
// until `target` events have executed. The callback captures the queue
// pointer, a sink pointer, and a Payload (~32+ bytes total).

template <typename Queue>
void
chainEvent(Queue &eq, std::uint64_t *sink, Payload p, std::uint64_t limit,
           Cycle delta, Cycle delta_near, unsigned far_percent)
{
    eq.scheduleIn(
        delta,
        [&eq, sink, p, limit, delta_near, far_percent]() mutable {
            *sink += p.acc;
            if (eq.executed() >= limit)
                return;
            Rng rng{p.rngState};
            p.rngState = rng.next();
            p.acc ^= p.rngState;
            // Delta drawn per event: mostly near, sometimes far.
            Cycle next = 1 + (p.rngState % delta_near);
            if (far_percent != 0 && (p.rngState % 100) < far_percent)
                next = 2000 + (p.rngState % 100000);
            chainEvent(eq, sink, p, limit, next, delta_near,
                       far_percent);
        });
}

template <typename Queue>
void
fanoutEvent(Queue &eq, std::uint64_t *sink, Payload p, std::uint64_t limit)
{
    eq.scheduleIn(
        1 + (p.rngState % 200),
        [&eq, sink, p, limit]() mutable {
            *sink += p.acc;
            if (eq.executed() >= limit)
                return;
            Rng rng{p.rngState};
            // A burst of 4 events at one cycle, then one continuation.
            const Cycle burst_at = 1 + (rng.next() % 200);
            for (int i = 0; i < 4; ++i) {
                const std::uint64_t tag = rng.next();
                eq.scheduleIn(burst_at, [sink, tag] { *sink += tag; });
            }
            p.rngState = rng.next();
            p.acc ^= p.rngState;
            fanoutEvent(eq, sink, p, limit);
        });
}

template <typename Queue>
double
runPattern(const char *pattern, std::uint64_t target)
{
    Queue eq;
    std::uint64_t sink = 0;
    Rng seed_rng{12345};
    constexpr unsigned kWidth = 64; // concurrent chains ~= MLP window
    for (unsigned i = 0; i < kWidth; ++i) {
        Payload p;
        p.rngState = seed_rng.next();
        p.acc = i;
        if (std::strcmp(pattern, "hot") == 0)
            chainEvent(eq, &sink, p, target, 1 + (p.rngState % 300),
                       300, 0);
        else if (std::strcmp(pattern, "mixed") == 0)
            chainEvent(eq, &sink, p, target, 1 + (p.rngState % 300),
                       300, 10);
        else
            fanoutEvent(eq, &sink, p, target);
    }

    const auto start = std::chrono::steady_clock::now();
    while (!eq.empty() && eq.executed() < target * 2)
        eq.step();
    const auto stop = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(stop - start).count();
    if (sink == 0x5eed) // defeat optimizing the whole run away
        std::printf("#");
    return static_cast<double>(eq.executed()) / secs;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t events = 2000000;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
            events = std::strtoull(argv[++i], nullptr, 10);
            if (events == 0) {
                std::fprintf(stderr,
                             "error: --events needs a positive count, "
                             "got '%s'\n", argv[i]);
                return 2;
            }
        }
    }

    static const char *patterns[] = {"hot", "mixed", "fanout"};
    double geomean = 1.0;
    std::printf("%-8s %16s %16s %9s\n", "pattern", "heap ev/s",
                "calendar ev/s", "speedup");
    for (const char *pattern : patterns) {
        const double heap_rate =
            runPattern<tempo::HeapEventQueue>(pattern, events);
        const double cal_rate =
            runPattern<tempo::EventQueue>(pattern, events);
        const double speedup = cal_rate / heap_rate;
        geomean *= speedup;
        std::printf("%-8s %16.0f %16.0f %8.2fx\n", pattern, heap_rate,
                    cal_rate, speedup);
    }
    geomean = std::pow(geomean, 1.0 / 3.0);
    std::printf("geomean speedup: %.2fx\n", geomean);
    return 0;
}
