/**
 * @file
 * Figure 15: the PT-row anticipation delay sweep. After serving a page
 * table access, TEMPO leaves the row open for a few cycles anticipating
 * more PT requests to the same row (Sec. 4.3a). The paper finds 5-10
 * cycles gain ~1-4% over wait=0, while 15 cycles starts to hurt by
 * delaying prefetches and demand accesses.
 */

#include "bench_common.hh"

int
main()
{
    using namespace tempo;
    using namespace tempo::bench;

    header("Figure 15",
           "TEMPO benefit vs PT-row anticipation delay (cycles)",
           "sweet spot around 10 cycles; 15 no better or slightly "
           "worse (y-axis is zoomed in the paper: differences are "
           "single percents)");

    const Cycle waits[] = {0, 5, 10, 15};
    std::printf("%-10s %8s %8s %8s %8s\n", "workload", "wait0%",
                "wait5%", "wait10%", "wait15%");
    for (const std::string &name : bigDataWorkloadNames()) {
        const SystemConfig base_cfg = SystemConfig::skylakeScaled();
        const RunResult base = runWorkload(base_cfg, name, refs());
        std::printf("%-10s", name.c_str());
        for (const Cycle wait : waits) {
            SystemConfig cfg = base_cfg;
            cfg.withTempo(true);
            cfg.mc.tempoPtRowHold = wait;
            const RunResult result = runWorkload(cfg, name, refs());
            std::printf(" %8.2f", pct(result.speedupOver(base)));
        }
        std::printf("\n");
    }
    footer();
    return 0;
}
