/**
 * @file
 * Figure 15: the PT-row anticipation delay sweep. After serving a page
 * table access, TEMPO leaves the row open for a few cycles anticipating
 * more PT requests to the same row (Sec. 4.3a). The paper finds 5-10
 * cycles gain ~1-4% over wait=0, while 15 cycles starts to hurt by
 * delaying prefetches and demand accesses.
 */

#include "bench_common.hh"

int
main()
{
    using namespace tempo;
    using namespace tempo::bench;

    header("Figure 15",
           "TEMPO benefit vs PT-row anticipation delay (cycles)",
           "sweet spot around 10 cycles; 15 no better or slightly "
           "worse (y-axis is zoomed in the paper: differences are "
           "single percents)");

    const Cycle waits[] = {0, 5, 10, 15};
    const std::size_t num_waits = std::size(waits);
    std::printf("%-10s %8s %8s %8s %8s\n", "workload", "wait0%",
                "wait5%", "wait10%", "wait15%");
    const std::vector<std::string> &names = bigDataWorkloadNames();
    const SystemConfig base_cfg = SystemConfig::skylakeScaled();

    std::vector<ExperimentPoint> points;
    for (const std::string &name : names) {
        points.push_back(point(base_cfg, name, refs()));
        for (const Cycle wait : waits) {
            SystemConfig cfg = base_cfg;
            cfg.withTempo(true);
            cfg.mc.tempoPtRowHold = wait;
            points.push_back(point(cfg, name, refs()));
        }
    }
    JsonRecorder json("fig15_pt_wait");
    const std::vector<RunResult> results = runAll(std::move(points));

    std::size_t idx = 0;
    for (const std::string &name : names) {
        const RunResult &base = results[idx++];
        json.add(name, {{"mc.tempo", "false"}}, base);
        std::printf("%-10s", name.c_str());
        for (std::size_t w = 0; w < num_waits; ++w) {
            const RunResult &result = results[idx++];
            std::printf(" %8.2f", pct(result.speedupOver(base)));
            json.add(name,
                     {{"mc.tempo", "true"},
                      {"mc.pt_row_hold",
                       std::to_string(waits[w])}},
                     result);
        }
        std::printf("\n");
    }
    json.write(refs());
    footer();
    return 0;
}
