/**
 * @file
 * Figure 12: TEMPO's benefits with and without the IMP indirect memory
 * prefetcher (Sec. 4.2). The paper's claim — "TEMPO improves the
 * performance of systems using IMP by as much as 40%, going beyond its
 * 10-30% improvements of systems without prefetching" — is reported
 * here as the combined IMP+TEMPO improvement over the no-prefetching
 * baseline, alongside the IMP-relative TEMPO delta.
 *
 * Mechanics reproduced: IMP's cross-page prefetches do their own page
 * table walks (thrashing the TLB and generating extra DRAM PT accesses
 * that trigger TEMPO), and its mispredicted prefetches waste bandwidth
 * that TEMPO's row-buffer hits partially recover.
 */

#include "bench_common.hh"

int
main()
{
    using namespace tempo;
    using namespace tempo::bench;

    header("Figure 12",
           "TEMPO x IMP prefetcher interaction",
           "combined IMP+TEMPO reaches well beyond TEMPO-alone "
           "(paper: up to ~40% vs 10-30%); energy tracks performance");

    std::printf("%-10s | %12s %12s %14s | %12s\n", "workload",
                "TEMPO alone%", "TEMPO on IMP%", "IMP+TEMPO tot%",
                "energy tot%");
    for (const std::string &name : bigDataWorkloadNames()) {
        const std::uint64_t n = refs();

        const Pair plain =
            runPair(SystemConfig::skylakeScaled(), name, n);

        SystemConfig imp_cfg = SystemConfig::skylakeScaled();
        imp_cfg.withImp(true);
        const Pair with_imp = runPair(imp_cfg, name, n);

        // Combined improvement of the full IMP+TEMPO system over the
        // original no-prefetching baseline.
        const double combined = with_imp.tempo.speedupOver(plain.base);
        const double combined_energy =
            with_imp.tempo.energySavingOver(plain.base);

        std::printf("%-10s | %12.1f %12.1f %14.1f | %12.1f\n",
                    name.c_str(),
                    pct(plain.tempo.speedupOver(plain.base)),
                    pct(with_imp.tempo.speedupOver(with_imp.base)),
                    pct(combined), pct(combined_energy));
    }
    footer();
    return 0;
}
