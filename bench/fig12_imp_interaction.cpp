/**
 * @file
 * Figure 12: TEMPO's benefits with and without the IMP indirect memory
 * prefetcher (Sec. 4.2). The paper's claim — "TEMPO improves the
 * performance of systems using IMP by as much as 40%, going beyond its
 * 10-30% improvements of systems without prefetching" — is reported
 * here as the combined IMP+TEMPO improvement over the no-prefetching
 * baseline, alongside the IMP-relative TEMPO delta.
 *
 * Mechanics reproduced: IMP's cross-page prefetches do their own page
 * table walks (thrashing the TLB and generating extra DRAM PT accesses
 * that trigger TEMPO), and its mispredicted prefetches waste bandwidth
 * that TEMPO's row-buffer hits partially recover.
 */

#include "bench_common.hh"

int
main()
{
    using namespace tempo;
    using namespace tempo::bench;

    header("Figure 12",
           "TEMPO x IMP prefetcher interaction",
           "combined IMP+TEMPO reaches well beyond TEMPO-alone "
           "(paper: up to ~40% vs 10-30%); energy tracks performance");

    std::printf("%-10s | %12s %12s %14s | %12s\n", "workload",
                "TEMPO alone%", "TEMPO on IMP%", "IMP+TEMPO tot%",
                "energy tot%");
    const std::uint64_t n = refs();
    const std::vector<std::string> &names = bigDataWorkloadNames();

    // Four points per workload: (plain, IMP) x (baseline, TEMPO).
    const SystemConfig plain_cfg = SystemConfig::skylakeScaled();
    SystemConfig plain_tempo_cfg = plain_cfg;
    plain_tempo_cfg.withTempo(true);
    SystemConfig imp_cfg = SystemConfig::skylakeScaled();
    imp_cfg.withImp(true);
    SystemConfig imp_tempo_cfg = imp_cfg;
    imp_tempo_cfg.withTempo(true);

    std::vector<ExperimentPoint> points;
    for (const std::string &name : names) {
        points.push_back(point(plain_cfg, name, n));
        points.push_back(point(plain_tempo_cfg, name, n));
        points.push_back(point(imp_cfg, name, n));
        points.push_back(point(imp_tempo_cfg, name, n));
    }
    JsonRecorder json("fig12_imp_interaction");
    const std::vector<RunResult> results = runAll(std::move(points));

    for (std::size_t i = 0; i < names.size(); ++i) {
        const Pair plain{results[4 * i], results[4 * i + 1]};
        const Pair with_imp{results[4 * i + 2], results[4 * i + 3]};

        // Combined improvement of the full IMP+TEMPO system over the
        // original no-prefetching baseline.
        const double combined = with_imp.tempo.speedupOver(plain.base);
        const double combined_energy =
            with_imp.tempo.energySavingOver(plain.base);

        std::printf("%-10s | %12.1f %12.1f %14.1f | %12.1f\n",
                    names[i].c_str(),
                    pct(plain.tempo.speedupOver(plain.base)),
                    pct(with_imp.tempo.speedupOver(with_imp.base)),
                    pct(combined), pct(combined_energy));
        json.add(names[i], {{"imp.enabled", "false"},
                            {"mc.tempo", "false"}}, plain.base);
        json.add(names[i], {{"imp.enabled", "false"},
                            {"mc.tempo", "true"}}, plain.tempo);
        json.add(names[i], {{"imp.enabled", "true"},
                            {"mc.tempo", "false"}}, with_imp.base);
        json.add(names[i], {{"imp.enabled", "true"},
                            {"mc.tempo", "true"}}, with_imp.tempo);
    }
    json.write(n);
    footer();
    return 0;
}
