/**
 * @file
 * Figure 14: TEMPO's performance improvement under adaptive, open, and
 * closed row-buffer management, each normalized to a baseline running
 * the *same* policy without TEMPO.
 */

#include "bench_common.hh"

int
main()
{
    using namespace tempo;
    using namespace tempo::bench;

    header("Figure 14",
           "TEMPO benefit per row-buffer policy",
           "TEMPO improves every policy on every workload; exact "
           "ordering is workload-dependent (canneal likes open rows, "
           "illustris is best with closed rows)");

    std::printf("%-10s %10s %10s %10s\n", "workload", "adaptive%",
                "open%", "closed%");
    for (const std::string &name : bigDataWorkloadNames()) {
        double benefit[3];
        int i = 0;
        for (RowPolicyKind kind :
             {RowPolicyKind::Adaptive, RowPolicyKind::Open,
              RowPolicyKind::Closed}) {
            SystemConfig cfg = SystemConfig::skylakeScaled();
            cfg.withRowPolicy(kind);
            const Pair pair = runPair(cfg, name, refs());
            benefit[i++] = pair.tempo.speedupOver(pair.base);
        }
        std::printf("%-10s %10.1f %10.1f %10.1f\n", name.c_str(),
                    pct(benefit[0]), pct(benefit[1]), pct(benefit[2]));
    }
    footer();
    return 0;
}
