/**
 * @file
 * Figure 14: TEMPO's performance improvement under adaptive, open, and
 * closed row-buffer management, each normalized to a baseline running
 * the *same* policy without TEMPO.
 */

#include "bench_common.hh"

int
main()
{
    using namespace tempo;
    using namespace tempo::bench;

    header("Figure 14",
           "TEMPO benefit per row-buffer policy",
           "TEMPO improves every policy on every workload; exact "
           "ordering is workload-dependent (canneal likes open rows, "
           "illustris is best with closed rows)");

    std::printf("%-10s %10s %10s %10s\n", "workload", "adaptive%",
                "open%", "closed%");
    const std::vector<std::string> &names = bigDataWorkloadNames();
    const RowPolicyKind kinds[] = {RowPolicyKind::Adaptive,
                                   RowPolicyKind::Open,
                                   RowPolicyKind::Closed};

    std::vector<ExperimentPoint> points;
    for (const std::string &name : names) {
        for (const RowPolicyKind kind : kinds) {
            SystemConfig cfg = SystemConfig::skylakeScaled();
            cfg.withRowPolicy(kind);
            SystemConfig tempo_cfg = cfg;
            tempo_cfg.withTempo(true);
            points.push_back(point(cfg, name, refs()));
            points.push_back(point(tempo_cfg, name, refs()));
        }
    }
    JsonRecorder json("fig14_row_policies");
    const std::vector<RunResult> results = runAll(std::move(points));

    std::size_t idx = 0;
    for (const std::string &name : names) {
        double benefit[3];
        for (int i = 0; i < 3; ++i, idx += 2) {
            const Pair pair{results[idx], results[idx + 1]};
            benefit[i] = pair.tempo.speedupOver(pair.base);
            json.add(name,
                     {{"dram.row_policy", rowPolicyName(kinds[i])},
                      {"mc.tempo", "false"}},
                     pair.base);
            json.add(name,
                     {{"dram.row_policy", rowPolicyName(kinds[i])},
                      {"mc.tempo", "true"}},
                     pair.tempo);
        }
        std::printf("%-10s %10.1f %10.1f %10.1f\n", name.c_str(),
                    pct(benefit[0]), pct(benefit[1]), pct(benefit[2]));
    }
    json.write(refs());
    footer();
    return 0;
}
