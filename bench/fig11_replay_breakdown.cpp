/**
 * @file
 * Figure 11 (left): where TEMPO-eligible replays are serviced — the LLC
 * (prefetch landed in time), the DRAM row buffer / an in-flight
 * prefetch (partial overlap), or the DRAM array (the pathological
 * unaided tail).
 */

#include "bench_common.hh"

int
main()
{
    using namespace tempo;
    using namespace tempo::bench;

    header("Figure 11 (left)",
           "replay service points under TEMPO",
           "75%+ of replays serviced from the LLC; most of the rest "
           "from the row buffer / overlapping prefetch; only a tiny "
           "unaided tail");

    std::printf("%-10s %8s %18s %10s %10s\n", "workload", "LLC%",
                "rowbuf+overlap%", "unaided%", "L1/L2%");
    const std::vector<std::string> &names = bigDataWorkloadNames();
    SystemConfig cfg = SystemConfig::skylakeScaled();
    cfg.withTempo(true);
    std::vector<ExperimentPoint> points;
    for (const std::string &name : names)
        points.push_back(point(cfg, name, refs()));
    JsonRecorder json("fig11_replay_breakdown");
    const std::vector<RunResult> results = runAll(std::move(points));

    for (std::size_t i = 0; i < names.size(); ++i) {
        const RunResult &result = results[i];
        const CoreStats &core = result.core;
        json.add(names[i], {{"mc.tempo", "true"}}, result);
        const double total =
            static_cast<double>(core.replayAfterDramWalk);
        if (total == 0) {
            std::printf("%-10s (no eligible replays)\n",
                        names[i].c_str());
            continue;
        }
        std::printf("%-10s %8.1f %18.1f %10.1f %10.1f\n",
                    names[i].c_str(),
                    pct(core.replayLlcHits / total),
                    pct((core.replayRowHits + core.replayMerged)
                        / total),
                    pct(core.replayArray / total),
                    pct(core.replayPrivateHits / total));
    }
    json.write(refs());
    footer();
    return 0;
}
