/**
 * @file
 * Figure 11 (left): where TEMPO-eligible replays are serviced — the LLC
 * (prefetch landed in time), the DRAM row buffer / an in-flight
 * prefetch (partial overlap), or the DRAM array (the pathological
 * unaided tail).
 */

#include "bench_common.hh"

int
main()
{
    using namespace tempo;
    using namespace tempo::bench;

    header("Figure 11 (left)",
           "replay service points under TEMPO",
           "75%+ of replays serviced from the LLC; most of the rest "
           "from the row buffer / overlapping prefetch; only a tiny "
           "unaided tail");

    std::printf("%-10s %8s %18s %10s %10s\n", "workload", "LLC%",
                "rowbuf+overlap%", "unaided%", "L1/L2%");
    for (const std::string &name : bigDataWorkloadNames()) {
        SystemConfig cfg = SystemConfig::skylakeScaled();
        cfg.withTempo(true);
        const RunResult result = runWorkload(cfg, name, refs());
        const CoreStats &core = result.core;
        const double total =
            static_cast<double>(core.replayAfterDramWalk);
        if (total == 0) {
            std::printf("%-10s (no eligible replays)\n", name.c_str());
            continue;
        }
        std::printf("%-10s %8.1f %18.1f %10.1f %10.1f\n", name.c_str(),
                    pct(core.replayLlcHits / total),
                    pct((core.replayRowHits + core.replayMerged)
                        / total),
                    pct(core.replayArray / total),
                    pct(core.replayPrivateHits / total));
    }
    footer();
    return 0;
}
