/**
 * @file
 * perf_translate: translations/sec of the memoized translation fast
 * path (vm/translator.hh) vs the retained unmemoized reference, over
 * the same page table and the same address streams.
 *
 *   perf_translate [--ops N]
 *
 * The table mixes all three page sizes (4K/2M/1G) like a THP-governed
 * heap. Four translation patterns bracket the design space:
 *
 *   page-streak — sequential 64B strides, long same-page runs: the
 *                 flat last-translation slot should dominate;
 *   hot-set     — skewed random pages (TLB-resident-like reuse): the
 *                 direct-mapped memo should dominate;
 *   uniform     — uniform random pages: memo with collision evictions;
 *   mutating    — uniform with a protect() flip every 4K translations:
 *                 measures epoch-based bulk invalidation overhead;
 *
 * plus a structural-walk trial (the walker's plan() feed). Both paths
 * fold every result (frame, permission, size, step addresses) into a
 * checksum; a mismatch means the memo diverged from the functional
 * walk and the run exits non-zero. Output is plain text plus a final
 * geomean speedup line; the CI perf-smoke job prints it
 * informationally.
 */

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/rng.hh"
#include "vm/os_memory.hh"
#include "vm/page_table.hh"
#include "vm/translator.hh"

namespace {

using namespace tempo;

struct TrialResult {
    double rate = 0;         //!< translations (or walks) per second
    std::uint64_t check = 0; //!< folded results of every lookup
};

/** Deterministic mixed-page-size table: ~8K leaves worth of 4K pages,
 * 2MB regions, and a pair of 1GB regions, in disjoint VA ranges. */
struct Arena {
    OsMemory os{OsMemoryConfig{}};
    PageTable table{os};
    std::vector<Addr> bases;     //!< one entry per mapped leaf
    std::vector<Addr> sizes;     //!< pageBytes of that leaf

    Arena()
    {
        Rng rng(12345);
        // 4K pages scattered through [0, 2GB).
        for (int i = 0; i < 6000; ++i) {
            const Addr base =
                alignDown(rng.below(Addr{2} << 30), kPageBytes);
            if (table.translate(base).valid)
                continue;
            table.map(base, PageSize::Page4K,
                      os.allocFrame(PageSize::Page4K));
            add(base, PageSize::Page4K);
        }
        // 2MB pages in [2GB, 4GB).
        for (int i = 0; i < 256; ++i) {
            const Addr base = (Addr{2} << 30)
                              + alignDown(rng.below(Addr{2} << 30),
                                          pageBytes(PageSize::Page2M));
            if (table.translate(base).valid)
                continue;
            table.map(base, PageSize::Page2M,
                      os.allocFrame(PageSize::Page2M));
            add(base, PageSize::Page2M);
        }
        // 1GB pages at [4GB, 6GB).
        for (int i = 0; i < 2; ++i) {
            const Addr base =
                (Addr{4} << 30)
                + static_cast<Addr>(i) * pageBytes(PageSize::Page1G);
            table.map(base, PageSize::Page1G,
                      os.allocFrame(PageSize::Page1G));
            add(base, PageSize::Page1G);
        }
    }

    void
    add(Addr base, PageSize size)
    {
        bases.push_back(base);
        sizes.push_back(pageBytes(size));
    }
};

enum class Pattern { PageStreak, HotSet, Uniform, Mutating };

/** The address stream each pattern feeds both translator paths. */
std::vector<Addr>
makeStream(const Arena &arena, Pattern pattern)
{
    constexpr std::size_t kStream = 1u << 16;
    Rng rng(777);
    std::vector<Addr> stream;
    stream.reserve(kStream);
    Addr cursor = arena.bases[0];
    Addr cursor_end = cursor + arena.sizes[0];
    for (std::size_t i = 0; i < kStream; ++i) {
        switch (pattern) {
          case Pattern::PageStreak:
            // 64B sequential strides; hop pages when one runs out.
            if (cursor + 64 >= cursor_end) {
                const std::size_t p = rng.below(arena.bases.size());
                cursor = arena.bases[p];
                cursor_end =
                    cursor + std::min<Addr>(arena.sizes[p], 1u << 20);
            }
            stream.push_back(cursor);
            cursor += 64;
            break;
          case Pattern::HotSet: {
            // 90% of picks land in 64 hot pages.
            const std::size_t p = rng.skewedBelow(
                arena.bases.size(), 64, 0.9);
            stream.push_back(arena.bases[p]
                             + rng.below(arena.sizes[p]));
            break;
          }
          case Pattern::Uniform:
          case Pattern::Mutating: {
            const std::size_t p = rng.below(arena.bases.size());
            stream.push_back(arena.bases[p]
                             + rng.below(arena.sizes[p]));
            break;
          }
        }
    }
    return stream;
}

std::uint64_t
fold(std::uint64_t check, std::uint64_t value)
{
    return (check ^ value) * 0x9e3779b97f4a7c15ULL;
}

TrialResult
runTranslate(Arena &arena, Translator &xlate,
             const std::vector<Addr> &stream, std::uint64_t ops,
             bool mutate)
{
    // protect() flips on a fixed page: a full epoch-based memo flush
    // every 4096 translations, charged to the measured loop.
    const Addr flip_page = arena.bases[0];
    bool writable = false;

    TrialResult result;
    const auto start = std::chrono::steady_clock::now();
    std::size_t pos = 0;
    for (std::uint64_t i = 0; i < ops; ++i) {
        if (mutate && (i & 0xfff) == 0) {
            arena.table.protect(flip_page, writable);
            writable = !writable;
        }
        const Addr vaddr = stream[pos];
        pos = (pos + 1 == stream.size()) ? 0 : pos + 1;
        const Translation t = xlate.translate(vaddr);
        result.check = fold(result.check,
                            t.physAddr(vaddr)
                                + (t.writable ? 1 : 0)
                                + static_cast<Addr>(t.size));
    }
    const auto stop = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(stop - start).count();
    result.rate = static_cast<double>(ops) / secs;
    return result;
}

TrialResult
runWalks(Translator &xlate, const std::vector<Addr> &stream,
         std::uint64_t ops)
{
    TrialResult result;
    const auto start = std::chrono::steady_clock::now();
    std::size_t pos = 0;
    for (std::uint64_t i = 0; i < ops; ++i) {
        const Addr vaddr = stream[pos];
        pos = (pos + 1 == stream.size()) ? 0 : pos + 1;
        const CachedWalk &walk = xlate.walk(vaddr);
        std::uint64_t acc = static_cast<std::uint64_t>(walk.count);
        for (int s = 0; s < walk.count; ++s)
            acc += walk.steps[s].pteAddr;
        result.check = fold(result.check, acc);
    }
    const auto stop = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(stop - start).count();
    result.rate = static_cast<double>(ops) / secs;
    return result;
}

TranslatorConfig
configFor(bool reference)
{
    TranslatorConfig cfg;
    cfg.useReferenceTranslator = reference;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t ops = 4000000;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--ops") == 0 && i + 1 < argc) {
            ops = std::strtoull(argv[++i], nullptr, 10);
            if (ops == 0) {
                std::fprintf(stderr,
                             "error: --ops needs a positive count, "
                             "got '%s'\n", argv[i]);
                return 2;
            }
        }
    }

    Arena arena;
    std::printf("table: %zu leaves, %llu nodes\n", arena.bases.size(),
                static_cast<unsigned long long>(
                    arena.table.nodeCount()));

    struct Row {
        const char *name;
        Pattern pattern;
        bool mutate;
    };
    static const Row rows[] = {
        {"page-streak", Pattern::PageStreak, false},
        {"hot-set", Pattern::HotSet, false},
        {"uniform", Pattern::Uniform, false},
        {"mutating", Pattern::Mutating, true},
    };

    bool diverged = false;
    double geomean = 1.0;
    std::size_t trials = 0;

    std::printf("%-12s %16s %16s %9s\n", "pattern", "ref xlate/s",
                "memo xlate/s", "speedup");
    for (const Row &row : rows) {
        const std::vector<Addr> stream =
            makeStream(arena, row.pattern);
        Translator ref(arena.table, configFor(true));
        Translator memo(arena.table, configFor(false));
        const TrialResult a =
            runTranslate(arena, ref, stream, ops, row.mutate);
        const TrialResult b =
            runTranslate(arena, memo, stream, ops, row.mutate);
        if (a.check != b.check) {
            std::fprintf(
                stderr,
                "FAIL: translate divergence on %s "
                "(ref %016llx vs memo %016llx)\n", row.name,
                static_cast<unsigned long long>(a.check),
                static_cast<unsigned long long>(b.check));
            diverged = true;
        }
        const double speedup = b.rate / a.rate;
        geomean *= speedup;
        ++trials;
        std::printf("%-12s %16.0f %16.0f %8.2fx\n", row.name, a.rate,
                    b.rate, speedup);
    }

    {
        // Structural walks over the hot-set stream (the TLB-miss feed).
        const std::vector<Addr> stream =
            makeStream(arena, Pattern::HotSet);
        Translator ref(arena.table, configFor(true));
        Translator memo(arena.table, configFor(false));
        const TrialResult a = runWalks(ref, stream, ops / 2);
        const TrialResult b = runWalks(memo, stream, ops / 2);
        if (a.check != b.check) {
            std::fprintf(
                stderr,
                "FAIL: walk divergence "
                "(ref %016llx vs memo %016llx)\n",
                static_cast<unsigned long long>(a.check),
                static_cast<unsigned long long>(b.check));
            diverged = true;
        }
        const double speedup = b.rate / a.rate;
        geomean *= speedup;
        ++trials;
        std::printf("%-12s %16.0f %16.0f %8.2fx\n", "walks", a.rate,
                    b.rate, speedup);
    }

    geomean = std::pow(geomean, 1.0 / static_cast<double>(trials));
    std::printf("geomean speedup: %.2fx\n", geomean);
    return diverged ? 1 : 0;
}
