/**
 * @file
 * Figure 1: fraction of total application runtime spent on DRAM page
 * table accesses (DRAM-PTW-Access), DRAM accesses for post-walk replays
 * (DRAM-Replay-Access), and all other DRAM accesses (DRAM-Other), for
 * the eight big-data workloads on the baseline (no-TEMPO) machine.
 */

#include "bench_common.hh"

int
main()
{
    using namespace tempo;
    using namespace tempo::bench;

    header("Figure 1", "runtime breakdown of DRAM overheads (baseline)",
           "DRAM-PTW-Access ~5-25%, DRAM-Replay-Access ~10-30% (nearly "
           "as large as PTW), DRAM-Other substantial");

    std::printf("%-10s %14s %17s %12s %12s\n", "workload",
                "DRAM-PTW-Acc%", "DRAM-Replay-Acc%", "DRAM-Other%",
                "non-DRAM%");
    const std::vector<std::string> &names = bigDataWorkloadNames();
    const SystemConfig cfg = SystemConfig::skylakeScaled();
    std::vector<ExperimentPoint> points;
    for (const std::string &name : names)
        points.push_back(point(cfg, name, refs()));
    JsonRecorder json("fig01_runtime_breakdown");
    const std::vector<RunResult> results = runAll(std::move(points));

    for (std::size_t i = 0; i < names.size(); ++i) {
        const RunResult &result = results[i];
        const double ptw = result.fracRuntimePtwDram();
        const double replay = result.fracRuntimeReplayDram();
        const double other = result.fracRuntimeOtherDram();
        std::printf("%-10s %14.1f %17.1f %12.1f %12.1f\n",
                    names[i].c_str(), pct(ptw), pct(replay), pct(other),
                    pct(1.0 - ptw - replay - other));
        json.add(names[i], {{"mc.tempo", "false"}}, result);
    }
    json.write(refs());
    footer();
    return 0;
}
