/**
 * @file
 * Figure 16: TEMPO atop the BLISS fairness scheduler on multiprogrammed
 * mixes. Left: fractional improvement in weighted speedup and maximum
 * slowdown as a function of the BLISS counter weight charged to TEMPO
 * prefetches (paper: half the demand weight is best). Right: the same
 * metrics as a function of the post-prefetch grace period (paper: 15
 * cycles is best).
 */

#include "bench_common.hh"

int
main()
{
    using namespace tempo;
    using namespace tempo::bench;

    header("Figure 16",
           "BLISS fairness scheduler x TEMPO",
           "weighted speedup improves in every configuration; the "
           "slowest app improves ~10%+; best prefetch weight = half "
           "of demand (1 vs 2); best grace period ~15 cycles");

    const std::uint64_t per_app = refsMultiprogrammed();
    const auto mixes = fairnessMixes();

    SystemConfig bliss_cfg =
        multiprogMachine(SystemConfig::skylakeScaled(), 8);
    bliss_cfg.withSched(SchedKind::Bliss);

    // Alone runtimes (shared by every configuration of a mix).
    std::vector<std::vector<Cycle>> alone;
    std::vector<FairnessPoint> baseline;
    for (const auto &mix : mixes) {
        alone.push_back(aloneRuntimes(bliss_cfg, mix, per_app));
        baseline.push_back(
            runMix(bliss_cfg, mix, alone.back(), per_app));
    }

    auto sweep = [&](const char *title, auto config_for,
                     const std::vector<unsigned> &xs) {
        std::printf("\n%s\n", title);
        std::printf("%6s %20s %20s\n", "x", "d-weighted-speedup%",
                    "d-max-slowdown%");
        for (const unsigned x : xs) {
            double ws = 0, slow = 0;
            for (std::size_t m = 0; m < mixes.size(); ++m) {
                SystemConfig cfg = config_for(x);
                const FairnessPoint point =
                    runMix(cfg, mixes[m], alone[m], per_app);
                ws += point.weightedSpeedup
                    / baseline[m].weightedSpeedup - 1.0;
                slow += 1.0
                    - point.maxSlowdown / baseline[m].maxSlowdown;
            }
            std::printf("%6u %20.2f %20.2f\n", x,
                        pct(ws / mixes.size()),
                        pct(slow / mixes.size()));
        }
    };

    sweep("left: prefetch counter weight (demand weight = 2)",
          [&](unsigned weight) {
              SystemConfig cfg = bliss_cfg;
              cfg.withTempo(true);
              cfg.mc.scheduler.blissPrefetchWeight = weight;
              return cfg;
          },
          {0, 1, 2, 3, 4});

    sweep("right: grace period after prefetch (cycles)",
          [&](unsigned grace) {
              SystemConfig cfg = bliss_cfg;
              cfg.withTempo(true);
              cfg.mc.tempoGracePeriod = grace;
              return cfg;
          },
          {0, 5, 15, 30, 60});

    footer();
    return 0;
}
