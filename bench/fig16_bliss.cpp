/**
 * @file
 * Figure 16: TEMPO atop the BLISS fairness scheduler on multiprogrammed
 * mixes. Left: fractional improvement in weighted speedup and maximum
 * slowdown as a function of the BLISS counter weight charged to TEMPO
 * prefetches (paper: half the demand weight is best). Right: the same
 * metrics as a function of the post-prefetch grace period (paper: 15
 * cycles is best).
 */

#include "bench_common.hh"

int
main()
{
    using namespace tempo;
    using namespace tempo::bench;

    header("Figure 16",
           "BLISS fairness scheduler x TEMPO",
           "weighted speedup improves in every configuration; the "
           "slowest app improves ~10%+; best prefetch weight = half "
           "of demand (1 vs 2); best grace period ~15 cycles");

    const std::uint64_t per_app = refsMultiprogrammed();
    const auto mixes = fairnessMixes();

    SystemConfig bliss_cfg =
        multiprogMachine(SystemConfig::skylakeScaled(), 8);
    bliss_cfg.withSched(SchedKind::Bliss);

    // Alone runtimes (shared by every configuration of a mix).
    std::vector<std::vector<Cycle>> alone;
    for (const auto &mix : mixes)
        alone.push_back(aloneRuntimes(bliss_cfg, mix, per_app));

    JsonRecorder json("fig16_bliss");

    // Baseline mixes run together as one parallel batch. A failed mix
    // contributes zero metrics (its status lands in the JSON).
    std::vector<MixPoint> base_points;
    for (const auto &mix : mixes)
        base_points.push_back(
            MixPoint{mix, bliss_cfg, per_app, 0});
    const std::vector<MultiResult> base_results =
        runAllMix(base_points);
    std::vector<FairnessPoint> baseline;
    for (std::size_t m = 0; m < mixes.size(); ++m) {
        const MultiResult &result = base_results[m];
        baseline.push_back(
            result.status.ok()
                ? FairnessPoint{result.weightedSpeedup(alone[m]),
                                result.maxSlowdown(alone[m])}
                : FairnessPoint{0, 0});
    }

    auto sweep = [&](const char *title, const char *key,
                     auto config_for, const std::vector<unsigned> &xs) {
        std::printf("\n%s\n", title);
        std::printf("%6s %20s %20s\n", "x", "d-weighted-speedup%",
                    "d-max-slowdown%");
        // All (x, mix) combinations execute as one parallel batch.
        std::vector<MixPoint> points;
        for (const unsigned x : xs)
            for (const auto &mix : mixes)
                points.push_back(
                    MixPoint{mix, config_for(x), per_app, 0});
        const std::vector<MultiResult> results = runAllMix(points);
        for (std::size_t xi = 0; xi < xs.size(); ++xi) {
            double ws = 0, slow = 0;
            for (std::size_t m = 0; m < mixes.size(); ++m) {
                const MultiResult &result =
                    results[xi * mixes.size() + m];
                const FairnessPoint point =
                    result.status.ok()
                        ? FairnessPoint{
                              result.weightedSpeedup(alone[m]),
                              result.maxSlowdown(alone[m])}
                        : FairnessPoint{0, 0};
                if (result.status.ok()
                    && baseline[m].weightedSpeedup > 0) {
                    ws += point.weightedSpeedup
                        / baseline[m].weightedSpeedup - 1.0;
                    slow += 1.0
                        - point.maxSlowdown / baseline[m].maxSlowdown;
                }
                json.addMetrics(
                    "mix" + std::to_string(m),
                    {{key, std::to_string(xs[xi])},
                     {"mc.tempo", "true"}},
                    {{"weighted_speedup", point.weightedSpeedup},
                     {"max_slowdown", point.maxSlowdown}},
                    result.status, result.runtime);
            }
            std::printf("%6u %20.2f %20.2f\n", xs[xi],
                        pct(ws / mixes.size()),
                        pct(slow / mixes.size()));
        }
    };

    for (std::size_t m = 0; m < mixes.size(); ++m) {
        json.addMetrics(
            "mix" + std::to_string(m), {{"mc.tempo", "false"}},
            {{"weighted_speedup", baseline[m].weightedSpeedup},
             {"max_slowdown", baseline[m].maxSlowdown}},
            base_results[m].status, base_results[m].runtime);
    }

    sweep("left: prefetch counter weight (demand weight = 2)",
          "mc.bliss_prefetch_weight",
          [&](unsigned weight) {
              SystemConfig cfg = bliss_cfg;
              cfg.withTempo(true);
              cfg.mc.scheduler.blissPrefetchWeight = weight;
              return cfg;
          },
          {0, 1, 2, 3, 4});

    sweep("right: grace period after prefetch (cycles)",
          "mc.grace_period",
          [&](unsigned grace) {
              SystemConfig cfg = bliss_cfg;
              cfg.withTempo(true);
              cfg.mc.tempoGracePeriod = grace;
              return cfg;
          },
          {0, 5, 15, 30, 60});

    json.write(per_app);
    footer();
    return 0;
}
