/**
 * @file
 * perf_cache: lookups/sec of the packed tag-array core
 * (cache/tag_array.hh) vs the retained linear-scan reference, over
 * identical address streams on the simulator's own geometries:
 *
 *   L1D  32KB/8, L2 128KB/8, LLC 512KB/16 (SetAssocCache), the STLB
 *   1536-entry/12-way and MMU-cache 32-entry/4-way arrays (AssocArray).
 *
 *   perf_cache [--ops N]
 *
 * Each trial drives both implementations through the same mix of
 * lookups, dirty installs, and invalidates, folding every observable
 * (hit/miss bit, victim address, victim dirtiness) into a checksum.
 * A checksum mismatch means the packed path diverged from the
 * reference hit/miss/victim sequence and the run exits non-zero, so
 * the CI perf-smoke job doubles as an equivalence check. Output is
 * plain text plus a final geomean speedup line.
 */

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "cache/set_assoc.hh"
#include "cache/tag_array.hh"
#include "common/rng.hh"
#include "vm/assoc_array.hh"

namespace {

using namespace tempo;

struct TrialResult {
    double rate = 0;         //!< lookups (accesses) per second
    std::uint64_t check = 0; //!< folded hit/victim observables
};

std::uint64_t
fold(std::uint64_t check, std::uint64_t value)
{
    return (check ^ value) * 0x9e3779b97f4a7c15ULL;
}

/**
 * One access stream reused by both implementations, shaped like the
 * simulator's demand traffic: half the accesses continue a sequential
 * walk (spatial locality — consecutive lines, so consecutive probes
 * mostly share a 4KB page), the rest jump, skewed so ~60% of jumps
 * land in a hot working set about half the cache's capacity (hits
 * dominate, as on the demand path) while the cold tail forces steady
 * evictions.
 */
std::vector<Addr>
makeStream(Addr capacity_lines, std::uint64_t seed)
{
    constexpr std::size_t kStream = 1u << 18;
    Rng rng(seed);
    const Addr hot = capacity_lines / 2 + 1;
    const Addr all = capacity_lines * 8 + 1;
    std::vector<Addr> stream;
    stream.reserve(kStream);
    Addr line = 0;
    for (std::size_t i = 0; i < kStream; ++i) {
        if (rng.chance(0.5))
            line = (line + 1) % all; // sequential walk
        else
            line = rng.chance(0.6) ? rng.below(hot) : rng.below(all);
        stream.push_back(line * kLineBytes);
    }
    return stream;
}

CacheConfig
configFor(bool reference)
{
    CacheConfig cfg;
    cfg.useReferenceCache = reference;
    return cfg;
}

/** Mixed lookup/install/invalidate loop over a SetAssocCache. The op
 * mix is position-derived (identical for both paths) — roughly 3/4
 * lookups with fill-on-miss, plus dirty installs and invalidates. */
TrialResult
runSetAssoc(SetAssocCache &cache, const std::vector<Addr> &stream,
            std::uint64_t ops)
{
    TrialResult result;
    const auto start = std::chrono::steady_clock::now();
    std::size_t pos = 0;
    for (std::uint64_t i = 0; i < ops; ++i) {
        const Addr addr = stream[pos];
        pos = (pos + 1 == stream.size()) ? 0 : pos + 1;
        switch (i & 0x7) {
          case 6: { // dirty install (a store's fill)
            const auto victim = cache.insertTracked(addr, true);
            result.check = fold(result.check,
                                victim.addr + (victim.dirty ? 1 : 0));
            break;
          }
          case 7: // invalidate; the return is the dropped-dirty bit
            result.check =
                fold(result.check, cache.invalidate(addr) ? 3 : 2);
            break;
          default: // demand lookup, clean fill on miss
            if (cache.lookup(addr)) {
                result.check = fold(result.check, 1);
            } else {
                const auto victim = cache.insertTracked(addr, false);
                result.check =
                    fold(result.check,
                         victim.addr + (victim.dirty ? 1 : 0));
            }
            break;
        }
    }
    const auto stop = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(stop - start).count();
    result.rate = static_cast<double>(ops) / secs;
    // Final counters join the checksum: stats must match too.
    result.check = fold(result.check, cache.hits());
    result.check = fold(result.check, cache.misses());
    return result;
}

/** Same shape for the generic AssocArray (TLB/MMU-cache geometries):
 * lookups with insert-on-miss plus occasional invalidates. Keys are
 * page numbers, as on the simulator's translation path — the stream's
 * sequential component repeats the same page across consecutive
 * probes, the locality every TLB is built around. */
TrialResult
runAssocArray(AssocArray<std::uint32_t> &arr,
              const std::vector<Addr> &stream, std::uint64_t ops)
{
    TrialResult result;
    const auto start = std::chrono::steady_clock::now();
    std::size_t pos = 0;
    for (std::uint64_t i = 0; i < ops; ++i) {
        const std::uint64_t key = stream[pos] >> 12;
        pos = (pos + 1 == stream.size()) ? 0 : pos + 1;
        if ((i & 0xf) == 15) {
            arr.invalidate(key);
            result.check = fold(result.check, 2);
            continue;
        }
        if (const std::uint32_t *payload = arr.lookup(key)) {
            result.check = fold(result.check, *payload + 1);
        } else {
            arr.insert(key, static_cast<std::uint32_t>(key * 31));
            result.check = fold(result.check, 0);
        }
    }
    const auto stop = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(stop - start).count();
    result.rate = static_cast<double>(ops) / secs;
    result.check = fold(result.check, arr.hits());
    result.check = fold(result.check, arr.misses());
    return result;
}

/**
 * Simulator-shaped aggregate trial: @p cores private L1/L2/STLB/MMU
 * arrays plus one shared LLC, probed round-robin the way the demand
 * path does (STLB -> MMU cache on TLB miss, then L1 -> L2 -> LLC with
 * fill-on-miss). Unlike the single-structure loops above, the combined
 * metadata footprint far exceeds the host L1/L2, so this measures what
 * the simulator actually pays per access: host cache lines touched.
 */
TrialResult
runAggregate(unsigned cores, bool reference,
             const std::vector<Addr> &stream, std::uint64_t ops)
{
    const CacheConfig cfg = configFor(reference);
    std::vector<SetAssocCache> l1s, l2s;
    std::vector<AssocArray<std::uint32_t>> stlbs, mmus;
    for (unsigned c = 0; c < cores; ++c) {
        l1s.emplace_back(Addr{32 * 1024}, 8, cfg);
        l2s.emplace_back(Addr{128 * 1024}, 8, cfg);
        stlbs.emplace_back(1536u, 12u, cfg);
        mmus.emplace_back(32u, 4u, cfg);
    }
    SetAssocCache llc(Addr{512 * 1024}, 16, cfg);

    TrialResult result;
    const auto start = std::chrono::steady_clock::now();
    std::size_t pos = 0;
    for (std::uint64_t i = 0; i < ops; ++i) {
        const unsigned c = static_cast<unsigned>(i % cores);
        // Per-core address offset so private working sets differ.
        const Addr addr = stream[pos] + (static_cast<Addr>(c) << 30);
        pos = (pos + 1 == stream.size()) ? 0 : pos + 1;

        // Translation first: STLB probe, MMU-cache consult on miss.
        const std::uint64_t vpn = addr >> 12;
        if (const std::uint32_t *pte = stlbs[c].lookup(vpn)) {
            result.check = fold(result.check, *pte + 1);
        } else {
            if (const std::uint32_t *mc = mmus[c].lookup(vpn >> 9))
                result.check = fold(result.check, *mc + 2);
            else
                mmus[c].insert(vpn >> 9,
                               static_cast<std::uint32_t>(vpn * 7));
            stlbs[c].insert(vpn, static_cast<std::uint32_t>(vpn * 31));
        }

        // Data side: L1 -> L2 -> LLC with fill-on-miss at each level.
        if (l1s[c].lookup(addr)) {
            result.check = fold(result.check, 1);
            continue;
        }
        if (!l2s[c].lookup(addr) && !llc.lookup(addr)) {
            const auto victim = llc.insertTracked(addr, (i & 1) != 0);
            result.check =
                fold(result.check,
                     victim.addr + (victim.dirty ? 1 : 0));
        }
        const auto v2 = l2s[c].insertTracked(addr, false);
        result.check = fold(result.check, v2.addr);
        const auto v1 = l1s[c].insertTracked(addr, (i & 3) == 3);
        result.check =
            fold(result.check, v1.addr + (v1.dirty ? 1 : 0));
    }
    const auto stop = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(stop - start).count();
    result.rate = static_cast<double>(ops) / secs;
    for (unsigned c = 0; c < cores; ++c) {
        result.check = fold(result.check, l1s[c].hits());
        result.check = fold(result.check, l2s[c].misses());
        result.check = fold(result.check, stlbs[c].hits());
        result.check = fold(result.check, mmus[c].misses());
    }
    result.check = fold(result.check, llc.hits());
    result.check = fold(result.check, llc.misses());
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t ops = 8000000;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--ops") == 0 && i + 1 < argc) {
            ops = std::strtoull(argv[++i], nullptr, 10);
            if (ops == 0) {
                std::fprintf(stderr,
                             "error: --ops needs a positive count, "
                             "got '%s'\n", argv[i]);
                return 2;
            }
        }
    }

    bool diverged = false;
    double geomean = 1.0;
    std::size_t trials = 0;

    std::printf("%-14s %16s %16s %9s\n", "geometry", "ref lookups/s",
                "packed lookups/s", "speedup");

    struct CacheRow {
        const char *name;
        Addr sizeBytes;
        unsigned assoc;
    };
    static const CacheRow cache_rows[] = {
        {"l1-32k/8", 32 * 1024, 8},
        {"l2-128k/8", 128 * 1024, 8},
        {"llc-512k/16", 512 * 1024, 16},
    };
    std::uint64_t seed = 0xcafe01;
    for (const CacheRow &row : cache_rows) {
        const std::vector<Addr> stream =
            makeStream(row.sizeBytes / kLineBytes, seed++);
        SetAssocCache ref(row.sizeBytes, row.assoc, configFor(true));
        SetAssocCache packed(row.sizeBytes, row.assoc,
                             configFor(false));
        const TrialResult a = runSetAssoc(ref, stream, ops);
        const TrialResult b = runSetAssoc(packed, stream, ops);
        if (a.check != b.check) {
            std::fprintf(
                stderr,
                "FAIL: divergence on %s (ref %016llx vs packed "
                "%016llx)\n", row.name,
                static_cast<unsigned long long>(a.check),
                static_cast<unsigned long long>(b.check));
            diverged = true;
        }
        const double speedup = b.rate / a.rate;
        geomean *= speedup;
        ++trials;
        std::printf("%-14s %16.0f %16.0f %8.2fx\n", row.name, a.rate,
                    b.rate, speedup);
    }

    struct ArrayRow {
        const char *name;
        unsigned entries;
        unsigned assoc;
    };
    static const ArrayRow array_rows[] = {
        {"stlb-1536/12", 1536, 12},
        {"mmu-32/4", 32, 4},
    };
    for (const ArrayRow &row : array_rows) {
        // 64 lines per 4KB page: size the stream so the page-granular
        // working set matches the array's capacity.
        const std::vector<Addr> stream =
            makeStream(static_cast<Addr>(row.entries) * 64, seed++);
        AssocArray<std::uint32_t> ref(row.entries, row.assoc,
                                      configFor(true));
        AssocArray<std::uint32_t> packed(row.entries, row.assoc,
                                         configFor(false));
        const TrialResult a = runAssocArray(ref, stream, ops);
        const TrialResult b = runAssocArray(packed, stream, ops);
        if (a.check != b.check) {
            std::fprintf(
                stderr,
                "FAIL: divergence on %s (ref %016llx vs packed "
                "%016llx)\n", row.name,
                static_cast<unsigned long long>(a.check),
                static_cast<unsigned long long>(b.check));
            diverged = true;
        }
        const double speedup = b.rate / a.rate;
        geomean *= speedup;
        ++trials;
        std::printf("%-14s %16.0f %16.0f %8.2fx\n", row.name, a.rate,
                    b.rate, speedup);
    }

    {
        // Aggregate rows: the LLC-capacity stream gives every level
        // real traffic (L1/L2 miss; LLC mostly-hit with evictions).
        const std::vector<Addr> stream =
            makeStream(Addr{512 * 1024} / kLineBytes, seed++);
        static const unsigned core_counts[] = {4, 8};
        for (const unsigned cores : core_counts) {
            char name[32];
            std::snprintf(name, sizeof(name), "agg-%ucore", cores);
            const TrialResult a =
                runAggregate(cores, true, stream, ops);
            const TrialResult b =
                runAggregate(cores, false, stream, ops);
            if (a.check != b.check) {
                std::fprintf(
                    stderr,
                    "FAIL: divergence on %s (ref %016llx vs packed "
                    "%016llx)\n", name,
                    static_cast<unsigned long long>(a.check),
                    static_cast<unsigned long long>(b.check));
                diverged = true;
            }
            const double speedup = b.rate / a.rate;
            geomean *= speedup;
            ++trials;
            std::printf("%-14s %16.0f %16.0f %8.2fx\n", name, a.rate,
                        b.rate, speedup);
        }
    }

    geomean = std::pow(geomean, 1.0 / static_cast<double>(trials));
    std::printf("geomean speedup: %.2fx\n", geomean);
    return diverged ? 1 : 0;
}
