/**
 * @file
 * Figure 10: TEMPO's performance (left axis, blue in the paper) and
 * energy (green) improvements as a fraction of baseline execution, plus
 * the fraction of the memory footprint backed by 2MB superpages (right
 * graph). Footer reports the hardware-overhead numbers from Sec. 4.1.
 */

#include "bench_common.hh"

int
main()
{
    using namespace tempo;
    using namespace tempo::bench;

    header("Figure 10",
           "TEMPO performance & energy improvement + 2MB coverage",
           "performance +10-30% (xsbench near the top), energy +1-14%, "
           ">50% of footprint in 2MB superpages, no workload hurt");

    std::printf("%-10s %8s %8s %14s\n", "workload", "perf%", "energy%",
                "2MB-coverage%");
    const std::vector<std::string> &names = bigDataWorkloadNames();
    JsonRecorder json("fig10_perf_energy");
    const std::vector<Pair> pairs =
        runPairs(SystemConfig::skylakeScaled(), names, refs());
    for (std::size_t i = 0; i < names.size(); ++i) {
        const Pair &pair = pairs[i];
        std::printf("%-10s %8.1f %8.1f %14.1f\n", names[i].c_str(),
                    pct(pair.tempo.speedupOver(pair.base)),
                    pct(pair.tempo.energySavingOver(pair.base)),
                    pct(pair.base.coverage2M));
        json.add(names[i], {{"mc.tempo", "false"}}, pair.base);
        json.add(names[i], {{"mc.tempo", "true"}}, pair.tempo);
    }

    const EnergyConfig energy;
    std::printf("\nhardware overheads (paper Sec. 4.1, synthesis): "
                "memory controller +%.1f%%, page table walker +%.1f%% "
                "(paper: +3%% / +0.5%%)\n",
                pct(energy.tempoMcAreaOverhead),
                pct(energy.tempoWalkerAreaOverhead));
    json.write(refs());
    footer();
    return 0;
}
