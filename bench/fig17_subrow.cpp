/**
 * @file
 * Figure 17: sub-row buffers (8 x 1KB per bank, Gulur et al.) under the
 * FOA and POA allocation policies, sweeping how many sub-rows are
 * dedicated to TEMPO's post-translation prefetches. The paper finds
 * that dedicating 2 of 8 is the sweet spot (~15% weighted speedup,
 * ~20% for the slowest app); dedicating too many starves demand.
 */

#include "bench_common.hh"

int
main()
{
    using namespace tempo;
    using namespace tempo::bench;

    header("Figure 17",
           "sub-row buffers: FOA/POA x dedicated prefetch sub-rows",
           "2 dedicated sub-rows is the sweet spot; more dedication "
           "deprioritizes demand and degrades");

    const std::uint64_t per_app = refsMultiprogrammed();
    const auto mixes = fairnessMixes();
    const unsigned dedications[] = {0, 1, 2, 4, 6};

    for (const SubRowAlloc alloc : {SubRowAlloc::FOA, SubRowAlloc::POA}) {
        std::printf("\n%s:\n", subRowAllocName(alloc));

        // Baseline: same sub-row organization, no TEMPO.
        SystemConfig base_cfg =
            multiprogMachine(SystemConfig::skylakeScaled(), 8);
        base_cfg.withSubRows(alloc, 0);

        std::vector<std::vector<Cycle>> alone;
        std::vector<FairnessPoint> baseline;
        for (const auto &mix : mixes) {
            alone.push_back(aloneRuntimes(base_cfg, mix, per_app));
            baseline.push_back(
                runMix(base_cfg, mix, alone.back(), per_app));
        }

        std::printf("%12s %20s %20s\n", "dedicated",
                    "d-weighted-speedup%", "d-max-slowdown%");
        for (const unsigned dedicated : dedications) {
            double ws = 0, slow = 0;
            for (std::size_t m = 0; m < mixes.size(); ++m) {
                SystemConfig cfg = base_cfg;
                cfg.withSubRows(alloc, dedicated).withTempo(true);
                const FairnessPoint point =
                    runMix(cfg, mixes[m], alone[m], per_app);
                ws += point.weightedSpeedup
                    / baseline[m].weightedSpeedup - 1.0;
                slow += 1.0
                    - point.maxSlowdown / baseline[m].maxSlowdown;
            }
            std::printf("%12u %20.2f %20.2f\n", dedicated,
                        pct(ws / mixes.size()),
                        pct(slow / mixes.size()));
        }
    }
    footer();
    return 0;
}
