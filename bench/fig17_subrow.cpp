/**
 * @file
 * Figure 17: sub-row buffers (8 x 1KB per bank, Gulur et al.) under the
 * FOA and POA allocation policies, sweeping how many sub-rows are
 * dedicated to TEMPO's post-translation prefetches. The paper finds
 * that dedicating 2 of 8 is the sweet spot (~15% weighted speedup,
 * ~20% for the slowest app); dedicating too many starves demand.
 */

#include "bench_common.hh"

int
main()
{
    using namespace tempo;
    using namespace tempo::bench;

    header("Figure 17",
           "sub-row buffers: FOA/POA x dedicated prefetch sub-rows",
           "2 dedicated sub-rows is the sweet spot; more dedication "
           "deprioritizes demand and degrades");

    const std::uint64_t per_app = refsMultiprogrammed();
    const auto mixes = fairnessMixes();
    const unsigned dedications[] = {0, 1, 2, 4, 6};

    JsonRecorder json("fig17_subrow");
    for (const SubRowAlloc alloc : {SubRowAlloc::FOA, SubRowAlloc::POA}) {
        std::printf("\n%s:\n", subRowAllocName(alloc));

        // Baseline: same sub-row organization, no TEMPO.
        SystemConfig base_cfg =
            multiprogMachine(SystemConfig::skylakeScaled(), 8);
        base_cfg.withSubRows(alloc, 0);

        std::vector<std::vector<Cycle>> alone;
        for (const auto &mix : mixes)
            alone.push_back(aloneRuntimes(base_cfg, mix, per_app));

        std::vector<MixPoint> base_points;
        for (const auto &mix : mixes)
            base_points.push_back(
                MixPoint{mix, base_cfg, per_app, 0});
        const std::vector<MultiResult> base_results =
            runAllMix(base_points);
        std::vector<FairnessPoint> baseline;
        for (std::size_t m = 0; m < mixes.size(); ++m) {
            const MultiResult &result = base_results[m];
            baseline.push_back(
                result.status.ok()
                    ? FairnessPoint{result.weightedSpeedup(alone[m]),
                                    result.maxSlowdown(alone[m])}
                    : FairnessPoint{0, 0});
            json.addMetrics(
                "mix" + std::to_string(m),
                {{"mc.subrow", subRowAllocName(alloc)},
                 {"mc.tempo", "false"}},
                {{"weighted_speedup", baseline[m].weightedSpeedup},
                 {"max_slowdown", baseline[m].maxSlowdown}},
                result.status, result.runtime);
        }

        // All (dedication, mix) combinations as one parallel batch.
        std::vector<MixPoint> points;
        for (const unsigned dedicated : dedications) {
            SystemConfig cfg = base_cfg;
            cfg.withSubRows(alloc, dedicated).withTempo(true);
            for (const auto &mix : mixes)
                points.push_back(MixPoint{mix, cfg, per_app, 0});
        }
        const std::vector<MultiResult> results = runAllMix(points);

        std::printf("%12s %20s %20s\n", "dedicated",
                    "d-weighted-speedup%", "d-max-slowdown%");
        for (std::size_t d = 0; d < std::size(dedications); ++d) {
            double ws = 0, slow = 0;
            for (std::size_t m = 0; m < mixes.size(); ++m) {
                const MultiResult &result =
                    results[d * mixes.size() + m];
                const FairnessPoint point =
                    result.status.ok()
                        ? FairnessPoint{
                              result.weightedSpeedup(alone[m]),
                              result.maxSlowdown(alone[m])}
                        : FairnessPoint{0, 0};
                if (result.status.ok()
                    && baseline[m].weightedSpeedup > 0) {
                    ws += point.weightedSpeedup
                        / baseline[m].weightedSpeedup - 1.0;
                    slow += 1.0
                        - point.maxSlowdown / baseline[m].maxSlowdown;
                }
                json.addMetrics(
                    "mix" + std::to_string(m),
                    {{"mc.subrow", subRowAllocName(alloc)},
                     {"mc.subrow_dedicated",
                      std::to_string(dedications[d])},
                     {"mc.tempo", "true"}},
                    {{"weighted_speedup", point.weightedSpeedup},
                     {"max_slowdown", point.maxSlowdown}},
                    result.status, result.runtime);
            }
            std::printf("%12u %20.2f %20.2f\n", dedications[d],
                        pct(ws / mixes.size()),
                        pct(slow / mixes.size()));
        }
    }
    json.write(per_app);
    footer();
    return 0;
}
