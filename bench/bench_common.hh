/**
 * @file
 * Shared helpers for the figure-reproduction benches. Each bench binary
 * regenerates one table/figure of the paper: same x-axis, same metric,
 * printed as an aligned text table with the paper's expected band noted.
 *
 * Trace length is controlled by TEMPO_BENCH_REFS (default 300000) and
 * TEMPO_BENCH_REFS_MP (per-app references in multiprogrammed runs,
 * default 60000) so CI can run quick passes and full runs stay cheap.
 *
 * Simulation points run concurrently on the experiment engine
 * (TEMPO_JOBS env var caps the worker threads; default all cores) and
 * every bench records its points into a machine-readable
 * BENCH_<name>.json file (tempo-bench-1 schema, see src/stats/json.hh)
 * in the working directory — or $TEMPO_BENCH_JSON_DIR when set.
 *
 * Observability (src/obs/) is environment-driven: TEMPO_TRACE_DIR
 * writes a TRACE_<bench>_<point>.json pipeline trace per single-app
 * point, TEMPO_TRACE_FILTER narrows the categories, and
 * TEMPO_TIMESERIES_WINDOW adds windowed time series to the bench JSON.
 *
 * Fault isolation: a point that throws or exceeds TEMPO_POINT_TIMEOUT
 * seconds is reported on stderr and in the JSON failures array while
 * every other point completes (TEMPO_RETRIES re-runs failures with a
 * reseeded workload). With TEMPO_BENCH_CHECKPOINT_DIR set, single-app
 * batches journal completed points to CKPT_<name>.jsonl there and a
 * re-run resumes, skipping what already finished; the resumed output
 * is byte-identical to an uninterrupted run.
 *
 * Scale-out (src/fabric/): TEMPO_FABRIC_DIR plus TEMPO_FABRIC_ROLE
 * ("worker" | "coordinator") run a bench's single-app batches as one
 * multi-process sweep — workers claim points in the shared directory
 * and every participant emits the same bytes a single-process run
 * would. TEMPO_FABRIC_WORKER names a worker (default w<pid>);
 * TEMPO_FABRIC_STALE_SEC / TEMPO_FABRIC_HEARTBEAT_SEC tune crash
 * detection; TEMPO_PROGRESS prints a progress line every N points.
 * Multiprogrammed batches (runAllMix) do not fabric-distribute.
 */

#ifndef TEMPO_BENCH_BENCH_COMMON_HH
#define TEMPO_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hh"
#include "core/multi_system.hh"
#include "core/tempo_system.hh"
#include "obs/obs.hh"
#include "workloads/workload.hh"

namespace tempo::bench {

inline std::uint64_t
envRefs(const char *name, std::uint64_t fallback)
{
    if (const char *value = std::getenv(name)) {
        const std::uint64_t parsed = std::strtoull(value, nullptr, 10);
        if (parsed > 0)
            return parsed;
    }
    return fallback;
}

/** Single-app trace length. */
inline std::uint64_t
refs()
{
    return envRefs("TEMPO_BENCH_REFS", 300000);
}

/** Per-app trace length for multiprogrammed mixes. */
inline std::uint64_t
refsMultiprogrammed()
{
    return envRefs("TEMPO_BENCH_REFS_MP", 60000);
}

inline void
header(const char *figure, const char *description, const char *expected)
{
    std::printf("==============================================================================\n");
    std::printf("%s — %s\n", figure, description);
    std::printf("paper expectation: %s\n", expected);
    std::printf("==============================================================================\n");
}

inline void
footer()
{
    std::printf("\n");
}

inline double
pct(double fraction)
{
    return 100.0 * fraction;
}

/** Run (baseline, TEMPO) for one workload under a base config. */
struct Pair {
    RunResult base;
    RunResult tempo;
};

inline Pair
runPair(const SystemConfig &base_cfg, const std::string &workload,
        std::uint64_t num_refs)
{
    SystemConfig tempo_cfg = base_cfg;
    tempo_cfg.withTempo(true);
    return Pair{runWorkload(base_cfg, workload, num_refs),
                runWorkload(tempo_cfg, workload, num_refs)};
}

/** One single-app point for the parallel batch helpers below. */
inline ExperimentPoint
point(const SystemConfig &cfg, const std::string &workload,
      std::uint64_t num_refs, std::uint64_t warmup = 0)
{
    ExperimentPoint p;
    p.workload = workload;
    p.config = cfg;
    p.refs = num_refs;
    p.warmup = warmup;
    return p;
}

/** One-time, environment-driven observability setup (TEMPO_TRACE_DIR,
 * TEMPO_TRACE_FILTER, TEMPO_TIMESERIES_WINDOW, TEMPO_TRACE_CAPACITY);
 * safe to call from every batch entry point. */
inline void
configureObsFromEnv()
{
    static const bool once = [] {
        obs::configure(obs::configFromEnv());
        return true;
    }();
    (void)once;
}

/** The bench name registered by the JsonRecorder constructor; names
 * the checkpoint journal. Benches run one batch at a time, so one
 * global is enough. */
inline std::string &
currentBenchName()
{
    static std::string name;
    return name;
}

/** Engine options for a bench batch: fault handling and the sweep
 * fabric from the environment (TEMPO_FABRIC_DIR + TEMPO_FABRIC_ROLE
 * turn any bench driver into a fabric worker or coordinator; see
 * EXPERIMENTS.md "Fabric sweeps"), plus a per-bench checkpoint
 * journal when TEMPO_BENCH_CHECKPOINT_DIR is set (ignored under the
 * fabric, whose shard files are the journal). */
inline ExperimentOptions
benchOptions()
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    if (!currentBenchName().empty())
        opts.progressLabel = currentBenchName();
    const char *dir = std::getenv("TEMPO_BENCH_CHECKPOINT_DIR");
    if (dir && !currentBenchName().empty())
        opts.checkpointPath = std::string(dir) + "/CKPT_"
            + currentBenchName() + ".jsonl";
    return opts;
}

/** Print any captured point failures to stderr. */
template <typename Result>
inline void
reportFailures(const std::vector<Result> &results)
{
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunStatus &status = results[i].status;
        if (status.ok())
            continue;
        std::fprintf(stderr,
                     "point %zu: %s after %u attempt(s): %s\n", i,
                     status.codeName(), status.attempts,
                     status.error.c_str());
    }
}

/** Report lookup that tolerates failed points, whose zeroed results
 * carry an empty report: absent keys read 0. */
inline double
rget(const RunResult &result, const std::string &key)
{
    return result.report.has(key) ? result.report.get(key) : 0.0;
}

/** Run all @p points concurrently; results come back in point order,
 * bit-identical to a serial run. Failures are captured per point
 * (reported on stderr and in the bench JSON), not thrown. */
inline std::vector<RunResult>
runAll(std::vector<ExperimentPoint> points)
{
    configureObsFromEnv();
    std::vector<RunResult> results =
        runExperiments(points, benchOptions());
    reportFailures(results);

    // Pipeline traces: one Chrome-trace JSON per point when
    // TEMPO_TRACE_DIR is set. The running index spans batches so a
    // bench with several runAll() calls never overwrites a file;
    // checkpoint-restored points (cfg.trace unset) are skipped.
    if (!obs::config().traceDir.empty()) {
        static std::size_t trace_index = 0;
        for (const RunResult &result : results) {
            const std::size_t index = trace_index++;
            if (!result.obs || !result.obs->cfg.trace)
                continue;
            const std::string bench = currentBenchName().empty()
                ? "bench" : currentBenchName();
            const std::string path = obs::config().traceDir + "/TRACE_"
                + bench + "_" + std::to_string(index) + ".json";
            try {
                obs::writeChromeTrace(path, *result.obs);
                std::fprintf(stderr, "wrote %s\n", path.c_str());
            } catch (const std::exception &error) {
                std::fprintf(stderr, "error: %s\n", error.what());
            }
        }
    }
    return results;
}

/** Multiprogrammed counterpart of runAll() (no checkpointing — mixes
 * are few and cheap relative to single-app sweeps). */
inline std::vector<MultiResult>
runAllMix(const std::vector<MixPoint> &points)
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    std::vector<MultiResult> results = runMixExperiments(points, opts);
    reportFailures(results);
    return results;
}

/**
 * Parallel (baseline, TEMPO) pairs for a workload list under one base
 * config: all 2*N runs execute concurrently, pairs return in name
 * order.
 */
inline std::vector<Pair>
runPairs(const SystemConfig &base_cfg,
         const std::vector<std::string> &names, std::uint64_t num_refs)
{
    SystemConfig tempo_cfg = base_cfg;
    tempo_cfg.withTempo(true);
    std::vector<ExperimentPoint> points;
    for (const std::string &name : names) {
        points.push_back(point(base_cfg, name, num_refs));
        points.push_back(point(tempo_cfg, name, num_refs));
    }
    const std::vector<RunResult> results = runAll(std::move(points));
    std::vector<Pair> pairs;
    pairs.reserve(names.size());
    for (std::size_t i = 0; i < names.size(); ++i)
        pairs.push_back(Pair{results[2 * i], results[2 * i + 1]});
    return pairs;
}

/**
 * Collects every simulation point a bench produces and writes them as
 * BENCH_<name>.json (tempo-bench-1 schema) when write() is called.
 */
class JsonRecorder
{
  public:
    explicit JsonRecorder(std::string bench)
        : bench_(std::move(bench))
    {
        // Register the bench name so runAll() can derive the
        // checkpoint journal path; construct the recorder BEFORE the
        // first batch.
        currentBenchName() = bench_;
        configureObsFromEnv();
    }

    /** Record one finished single-app point. */
    void
    add(const std::string &workload,
        std::vector<std::pair<std::string, std::string>> overrides,
        const RunResult &result)
    {
        points_.push_back(
            toBenchPoint(workload, std::move(overrides), result));
    }

    /** Record a point measured by derived metrics only (e.g. the
     * fairness studies, whose unit is a mix, not a single run). */
    void
    addMetrics(const std::string &label,
               std::vector<std::pair<std::string, std::string>> overrides,
               std::vector<std::pair<std::string, double>> counters,
               std::uint64_t runtime_cycles = 0)
    {
        stats::BenchPoint point;
        point.workload = label;
        point.config = std::move(overrides);
        point.runtimeCycles = runtime_cycles;
        point.counters = std::move(counters);
        points_.push_back(std::move(point));
    }

    /** Metrics-only point that carries an engine status (failed mix
     * points record their failure instead of fake metrics). */
    void
    addMetrics(const std::string &label,
               std::vector<std::pair<std::string, std::string>> overrides,
               std::vector<std::pair<std::string, double>> counters,
               const RunStatus &status,
               std::uint64_t runtime_cycles = 0)
    {
        addMetrics(label, std::move(overrides), std::move(counters),
                   runtime_cycles);
        stats::BenchPoint &point = points_.back();
        point.status = status.codeName();
        point.error = status.error;
        point.attempts = status.attempts;
        point.seedUsed = status.seedUsed;
        point.digest = status.digest;
    }

    /** Write BENCH_<bench>.json; prints the path on success. */
    void
    write(std::uint64_t num_refs) const
    {
        std::string dir;
        if (const char *env = std::getenv("TEMPO_BENCH_JSON_DIR"))
            dir = std::string(env) + "/";
        const std::string path = dir + "BENCH_" + bench_ + ".json";
        try {
            stats::writeBenchJson(path, bench_, num_refs,
                                  SystemConfig::skylakeScaled().seed,
                                  points_);
            std::printf("wrote %s\n", path.c_str());
        } catch (const std::exception &error) {
            std::fprintf(stderr, "error: %s\n", error.what());
        }
    }

  private:
    std::string bench_;
    std::vector<stats::BenchPoint> points_;
};

/**
 * Scale the shared machine for an N-app multiprogrammed run: the LLC
 * grows with core count (the paper's 32-core part shares a large LLC)
 * and the memory system gets more channels, keeping per-core cache and
 * bandwidth shares comparable to the single-app machine.
 */
inline SystemConfig
multiprogMachine(SystemConfig cfg, std::size_t num_apps)
{
    cfg.caches.llc.sizeBytes *= num_apps;
    cfg.dram.channels = 4;
    return cfg;
}

/** The multiprogrammed mixes used for the fairness studies (paper
 * Sec. 6.3: Spec/Parsec applications "with a range of memory
 * intensities"; we mix big-data, medium, and small apps). */
inline std::vector<std::vector<std::string>>
fairnessMixes()
{
    return {
        {"xsbench", "mcf", "lbm.medium", "astar.small", "canneal",
         "milc.medium", "gcc.small", "hmmer.small"},
        {"illustris", "graph500", "libquantum.medium", "bzip2.small",
         "lsh", "lbm.medium", "x264.small", "swaptions.small"},
    };
}

/** Weighted-speedup / max-slowdown of one mix under one config. */
struct FairnessPoint {
    double weightedSpeedup;
    double maxSlowdown;
};

inline FairnessPoint
runMix(const SystemConfig &cfg, const std::vector<std::string> &names,
       const std::vector<Cycle> &alone, std::uint64_t refs_per_app)
{
    MultiSystem system(cfg, makeMix(names, cfg.seed));
    const MultiResult result = system.run(refs_per_app);
    return FairnessPoint{result.weightedSpeedup(alone),
                         result.maxSlowdown(alone)};
}

} // namespace tempo::bench

#endif // TEMPO_BENCH_BENCH_COMMON_HH
