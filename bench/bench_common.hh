/**
 * @file
 * Shared helpers for the figure-reproduction benches. Each bench binary
 * regenerates one table/figure of the paper: same x-axis, same metric,
 * printed as an aligned text table with the paper's expected band noted.
 *
 * Trace length is controlled by TEMPO_BENCH_REFS (default 300000) and
 * TEMPO_BENCH_REFS_MP (per-app references in multiprogrammed runs,
 * default 60000) so CI can run quick passes and full runs stay cheap.
 */

#ifndef TEMPO_BENCH_BENCH_COMMON_HH
#define TEMPO_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/multi_system.hh"
#include "core/tempo_system.hh"
#include "workloads/workload.hh"

namespace tempo::bench {

inline std::uint64_t
envRefs(const char *name, std::uint64_t fallback)
{
    if (const char *value = std::getenv(name)) {
        const std::uint64_t parsed = std::strtoull(value, nullptr, 10);
        if (parsed > 0)
            return parsed;
    }
    return fallback;
}

/** Single-app trace length. */
inline std::uint64_t
refs()
{
    return envRefs("TEMPO_BENCH_REFS", 300000);
}

/** Per-app trace length for multiprogrammed mixes. */
inline std::uint64_t
refsMultiprogrammed()
{
    return envRefs("TEMPO_BENCH_REFS_MP", 60000);
}

inline void
header(const char *figure, const char *description, const char *expected)
{
    std::printf("==============================================================================\n");
    std::printf("%s — %s\n", figure, description);
    std::printf("paper expectation: %s\n", expected);
    std::printf("==============================================================================\n");
}

inline void
footer()
{
    std::printf("\n");
}

inline double
pct(double fraction)
{
    return 100.0 * fraction;
}

/** Run (baseline, TEMPO) for one workload under a base config. */
struct Pair {
    RunResult base;
    RunResult tempo;
};

inline Pair
runPair(const SystemConfig &base_cfg, const std::string &workload,
        std::uint64_t num_refs)
{
    SystemConfig tempo_cfg = base_cfg;
    tempo_cfg.withTempo(true);
    return Pair{runWorkload(base_cfg, workload, num_refs),
                runWorkload(tempo_cfg, workload, num_refs)};
}

/**
 * Scale the shared machine for an N-app multiprogrammed run: the LLC
 * grows with core count (the paper's 32-core part shares a large LLC)
 * and the memory system gets more channels, keeping per-core cache and
 * bandwidth shares comparable to the single-app machine.
 */
inline SystemConfig
multiprogMachine(SystemConfig cfg, std::size_t num_apps)
{
    cfg.caches.llc.sizeBytes *= num_apps;
    cfg.dram.channels = 4;
    return cfg;
}

/** The multiprogrammed mixes used for the fairness studies (paper
 * Sec. 6.3: Spec/Parsec applications "with a range of memory
 * intensities"; we mix big-data, medium, and small apps). */
inline std::vector<std::vector<std::string>>
fairnessMixes()
{
    return {
        {"xsbench", "mcf", "lbm.medium", "astar.small", "canneal",
         "milc.medium", "gcc.small", "hmmer.small"},
        {"illustris", "graph500", "libquantum.medium", "bzip2.small",
         "lsh", "lbm.medium", "x264.small", "swaptions.small"},
    };
}

/** Weighted-speedup / max-slowdown of one mix under one config. */
struct FairnessPoint {
    double weightedSpeedup;
    double maxSlowdown;
};

inline FairnessPoint
runMix(const SystemConfig &cfg, const std::vector<std::string> &names,
       const std::vector<Cycle> &alone, std::uint64_t refs_per_app)
{
    MultiSystem system(cfg, makeMix(names, cfg.seed));
    const MultiResult result = system.run(refs_per_app);
    return FairnessPoint{result.weightedSpeedup(alone),
                         result.maxSlowdown(alone)};
}

} // namespace tempo::bench

#endif // TEMPO_BENCH_BENCH_COMMON_HH
