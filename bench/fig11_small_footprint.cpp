/**
 * @file
 * Figure 11 (right): TEMPO on smaller-footprint Spec/Parsec workloads —
 * the do-no-harm study. The paper reports ~1-2% performance and ~1%
 * energy improvements, and crucially not a single slowdown.
 */

#include "bench_common.hh"

int
main()
{
    using namespace tempo;
    using namespace tempo::bench;

    header("Figure 11 (right)",
           "small-footprint workloads: TEMPO does no harm",
           "every workload >= 0%; typical gains ~1-2% perf, ~1% energy");

    std::printf("%-18s %8s %8s %12s\n", "workload", "perf%", "energy%",
                "TLB-miss%");
    bool any_harm = false;
    const std::vector<std::string> &names = smallWorkloadNames();
    JsonRecorder json("fig11_small_footprint");
    const std::vector<Pair> pairs =
        runPairs(SystemConfig::skylakeScaled(), names, refs());
    for (std::size_t i = 0; i < names.size(); ++i) {
        const Pair &pair = pairs[i];
        const double perf = pair.tempo.speedupOver(pair.base);
        const double energy = pair.tempo.energySavingOver(pair.base);
        any_harm |= perf < -0.005 || energy < -0.005;
        std::printf("%-18s %8.1f %8.1f %12.1f\n", names[i].c_str(),
                    pct(perf), pct(energy),
                    pct(rget(pair.base, "tlb.miss_rate")));
        json.add(names[i], {{"mc.tempo", "false"}}, pair.base);
        json.add(names[i], {{"mc.tempo", "true"}}, pair.tempo);
    }
    json.write(refs());
    std::printf("\n%s\n", any_harm
                              ? "WARNING: a workload was harmed"
                              : "no workload harmed (matches paper)");
    footer();
    return 0;
}
