/**
 * @file
 * perf_txq: scheduler picks/sec of the indexed transaction queue vs the
 * retained flat-scan reference schedulers, at steady queue depths.
 *
 *   perf_txq [--picks N]
 *
 * Each trial holds one channel's queue at a fixed depth: pick, dispatch
 * through the DRAM device (so row buffers open and close exactly as in
 * the simulator), release, refill. The request mix mirrors a TEMPO run —
 * ~20% page-table walks (half tagged), 15% TEMPO prefetches, 10%
 * writebacks, 4 applications, a small row pool so row hits are common.
 *
 * Every steady-state queue is scheduled kPickRepeat times (advancing
 * the clock one cycle per pick) before the winning request dispatches:
 * the fixed DRAM-access/refill cost is amortized across the repeats so
 * the reported picks/sec tracks scheduler cost, not churn. Both paths
 * use the same repeat count and fold every picked seq.
 *
 * Both paths fold every picked seq into a checksum; a mismatch means the
 * indexed argmax diverged from the flat scan and the run aborts. Output
 * is plain text plus a final geomean speedup line; the CI perf-smoke job
 * prints it informationally.
 */

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>

#include "mc/bliss.hh"
#include "mc/reference_scheduler.hh"
#include "mc/tx_queue.hh"

namespace {

using namespace tempo;

/** splitmix64: deterministic, seedable, no <random> state overhead. */
struct Rng {
    std::uint64_t x;
    std::uint64_t
    next()
    {
        std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }
};

struct TrialResult {
    double rate = 0;          //!< picks per second
    std::uint64_t check = 0;  //!< folded seqs of every pick
};

QueuedRequest
makeRequest(Rng &rng, Cycle now, std::uint64_t seq)
{
    QueuedRequest entry;
    // Rows 0-15 across all banks of one channel: dense enough that row
    // hits, conflicts, and per-bank FIFO depth all occur.
    entry.req.paddr = rng.next() & ((1u << 20) - 1) & ~0x3full;
    const std::uint64_t roll = rng.next() % 100;
    if (roll < 20) {
        entry.req.kind = ReqKind::PtWalk;
        entry.req.tempo.tagged = (roll % 2) == 0;
    } else if (roll < 35) {
        entry.req.kind = ReqKind::TempoPrefetch;
    } else if (roll < 45) {
        entry.req.kind = ReqKind::Writeback;
        entry.req.isWrite = true;
    }
    entry.req.app = static_cast<AppId>(rng.next() % 4);
    entry.arrival = now;
    entry.seq = seq;
    return entry;
}

constexpr unsigned kPickRepeat = 8;

template <typename Sched>
TrialResult
runTrial(unsigned depth, std::uint64_t dispatches, bool per_app)
{
    DramConfig dram_cfg;
    dram_cfg.channels = 1;
    dram_cfg.rowPolicy = RowPolicyKind::Open;
    SchedulerConfig sched_cfg;
    sched_cfg.tempoGrouping = true;

    DramDevice dram(dram_cfg);
    TxQueue txq(dram, per_app);
    Sched sched(sched_cfg);
    Rng rng{999};
    std::uint64_t seq = 0;
    Cycle now = 0;
    for (unsigned i = 0; i < depth; ++i)
        txq.enqueue(makeRequest(rng, now, seq++));

    TrialResult result;
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < dispatches; ++i) {
        std::uint32_t id = TxQueue::kNone;
        for (unsigned r = 0; r < kPickRepeat; ++r) {
            id = sched.pick(txq, 0, dram, ++now);
            result.check = (result.check ^ txq.entry(id).seq)
                * 0x9e3779b97f4a7c15ULL;
        }
        const QueuedRequest &entry = txq.entry(id);
        txq.remove(id);
        dram.access(entry.req.paddr, entry.req.isWrite,
                    entry.req.kind == ReqKind::TempoPrefetch,
                    entry.req.app, now, 0);
        sched.served(entry, now);
        txq.release(id);
        txq.enqueue(makeRequest(rng, now, seq++));
    }
    const auto stop = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(stop - start).count();
    result.rate =
        static_cast<double>(dispatches * kPickRepeat) / secs;
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t picks = 400000;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--picks") == 0 && i + 1 < argc) {
            picks = std::strtoull(argv[++i], nullptr, 10);
            if (picks == 0) {
                std::fprintf(stderr,
                             "error: --picks needs a positive count, "
                             "got '%s'\n", argv[i]);
                return 2;
            }
        }
    }

    static const unsigned depths[] = {8, 32, 128, 512};
    bool diverged = false;
    double geomean = 1.0;

    std::printf("FR-FCFS\n%-6s %16s %16s %9s\n", "depth",
                "flat picks/s", "indexed picks/s", "speedup");
    for (const unsigned depth : depths) {
        // FR-FCFS ignores the app id, so the controller runs it with
        // merged per-app sub-FIFOs; measure that configuration.
        const TrialResult flat =
            runTrial<RefFrFcfsScheduler>(depth, picks, false);
        const TrialResult indexed =
            runTrial<FrFcfsScheduler>(depth, picks, false);
        if (flat.check != indexed.check) {
            std::fprintf(stderr,
                         "FAIL: pick divergence at depth %u "
                         "(flat %016llx vs indexed %016llx)\n", depth,
                         static_cast<unsigned long long>(flat.check),
                         static_cast<unsigned long long>(indexed.check));
            diverged = true;
        }
        const double speedup = indexed.rate / flat.rate;
        geomean *= speedup;
        std::printf("%-6u %16.0f %16.0f %8.2fx\n", depth, flat.rate,
                    indexed.rate, speedup);
    }

    std::printf("BLISS\n%-6s %16s %16s %9s\n", "depth",
                "flat picks/s", "indexed picks/s", "speedup");
    for (const unsigned depth : depths) {
        const TrialResult flat =
            runTrial<RefBlissScheduler>(depth, picks, true);
        const TrialResult indexed =
            runTrial<BlissScheduler>(depth, picks, true);
        if (flat.check != indexed.check) {
            std::fprintf(stderr,
                         "FAIL: BLISS pick divergence at depth %u "
                         "(flat %016llx vs indexed %016llx)\n", depth,
                         static_cast<unsigned long long>(flat.check),
                         static_cast<unsigned long long>(indexed.check));
            diverged = true;
        }
        const double speedup = indexed.rate / flat.rate;
        geomean *= speedup;
        std::printf("%-6u %16.0f %16.0f %8.2fx\n", depth, flat.rate,
                    indexed.rate, speedup);
    }

    geomean = std::pow(geomean, 1.0 / (2.0 * 4.0));
    std::printf("geomean speedup: %.2fx\n", geomean);
    return diverged ? 1 : 0;
}
