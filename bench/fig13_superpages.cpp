/**
 * @file
 * Figure 13: TEMPO performance improvement as a function of the
 * fraction of the footprint backed by superpages. Points per workload:
 * 4KB-only (triangle), THP with memhog at 0/25/50/75% fragmentation
 * (circles; memhog=0 is the red circle used throughout the paper),
 * libhugetlbfs 2MB, and libhugetlbfs 1GB (boxes).
 */

#include "bench_common.hh"

namespace {

struct Config13 {
    const char *label;
    tempo::PagePolicy policy;
    double frag;
};

} // namespace

int
main()
{
    using namespace tempo;
    using namespace tempo::bench;

    header("Figure 13",
           "TEMPO benefit vs superpage coverage",
           "benefit declines as coverage rises but stays positive: "
           "high-coverage 2MB still +8-25%, 1GB pages still +5%-ish");

    const Config13 configs[] = {
        {"4K-only", PagePolicy::Base4K, 0.0},
        {"THP+memhog75", PagePolicy::Thp, 0.75},
        {"THP+memhog50", PagePolicy::Thp, 0.50},
        {"THP+memhog25", PagePolicy::Thp, 0.25},
        {"THP (red dot)", PagePolicy::Thp, 0.0},
        {"hugetlbfs-2M", PagePolicy::Hugetlbfs2M, 0.0},
        {"hugetlbfs-1G", PagePolicy::Hugetlbfs1G, 0.0},
    };

    const std::vector<std::string> &names = bigDataWorkloadNames();
    const std::size_t num_configs = std::size(configs);

    std::vector<ExperimentPoint> points;
    for (const std::string &name : names) {
        for (const Config13 &config : configs) {
            SystemConfig cfg = SystemConfig::skylakeScaled();
            cfg.withPagePolicy(config.policy, config.frag);
            SystemConfig tempo_cfg = cfg;
            tempo_cfg.withTempo(true);
            points.push_back(point(cfg, name, refs()));
            points.push_back(point(tempo_cfg, name, refs()));
        }
    }
    JsonRecorder json("fig13_superpages");
    const std::vector<RunResult> results = runAll(std::move(points));

    std::size_t idx = 0;
    for (const std::string &name : names) {
        std::printf("%s:\n", name.c_str());
        std::printf("  %-14s %12s %10s\n", "config", "coverage%",
                    "benefit%");
        for (std::size_t c = 0; c < num_configs; ++c, idx += 2) {
            const Pair pair{results[idx], results[idx + 1]};
            std::printf("  %-14s %12.1f %10.1f\n", configs[c].label,
                        pct(pair.base.superpageCoverage),
                        pct(pair.tempo.speedupOver(pair.base)));
            const std::vector<std::pair<std::string, std::string>>
                base_overrides = {{"vm.page_policy", configs[c].label},
                                  {"mc.tempo", "false"}};
            auto tempo_overrides = base_overrides;
            tempo_overrides[1].second = "true";
            json.add(name, base_overrides, pair.base);
            json.add(name, tempo_overrides, pair.tempo);
        }
    }
    json.write(refs());
    footer();
    return 0;
}
