/**
 * @file
 * Figure 13: TEMPO performance improvement as a function of the
 * fraction of the footprint backed by superpages. Points per workload:
 * 4KB-only (triangle), THP with memhog at 0/25/50/75% fragmentation
 * (circles; memhog=0 is the red circle used throughout the paper),
 * libhugetlbfs 2MB, and libhugetlbfs 1GB (boxes).
 */

#include "bench_common.hh"

namespace {

struct Config13 {
    const char *label;
    tempo::PagePolicy policy;
    double frag;
};

} // namespace

int
main()
{
    using namespace tempo;
    using namespace tempo::bench;

    header("Figure 13",
           "TEMPO benefit vs superpage coverage",
           "benefit declines as coverage rises but stays positive: "
           "high-coverage 2MB still +8-25%, 1GB pages still +5%-ish");

    const Config13 configs[] = {
        {"4K-only", PagePolicy::Base4K, 0.0},
        {"THP+memhog75", PagePolicy::Thp, 0.75},
        {"THP+memhog50", PagePolicy::Thp, 0.50},
        {"THP+memhog25", PagePolicy::Thp, 0.25},
        {"THP (red dot)", PagePolicy::Thp, 0.0},
        {"hugetlbfs-2M", PagePolicy::Hugetlbfs2M, 0.0},
        {"hugetlbfs-1G", PagePolicy::Hugetlbfs1G, 0.0},
    };

    for (const std::string &name : bigDataWorkloadNames()) {
        std::printf("%s:\n", name.c_str());
        std::printf("  %-14s %12s %10s\n", "config", "coverage%",
                    "benefit%");
        for (const Config13 &config : configs) {
            SystemConfig cfg = SystemConfig::skylakeScaled();
            cfg.withPagePolicy(config.policy, config.frag);
            const Pair pair = runPair(cfg, name, refs());
            std::printf("  %-14s %12.1f %10.1f\n", config.label,
                        pct(pair.base.superpageCoverage),
                        pct(pair.tempo.speedupOver(pair.base)));
        }
    }
    footer();
    return 0;
}
