/**
 * @file
 * Figure 4: fraction of total DRAM references devoted to page-table
 * walk accesses, replay accesses, and other accesses — plus the two
 * side observations quoted in Secs. 1/2.2: 96%+ of DRAM page-table
 * accesses are for leaf PTs, and 98%+ of DRAM page-table walks are
 * followed by a DRAM access for the replay.
 */

#include "bench_common.hh"

int
main()
{
    using namespace tempo;
    using namespace tempo::bench;

    header("Figure 4",
           "DRAM reference breakdown (baseline)",
           "DRAM-PTW-Access 20-40% of DRAM references; "
           "DRAM-Replay-Access comparable; leaf PTEs ~96%+ of PT DRAM "
           "traffic; 98%+ of DRAM walks followed by DRAM replays");

    std::printf("%-10s %10s %12s %10s | %10s %15s\n", "workload",
                "PTW%", "Replay%", "Other%", "leaf-PT%",
                "replay-follows%");
    const std::vector<std::string> &names = bigDataWorkloadNames();
    const SystemConfig cfg = SystemConfig::skylakeScaled();
    std::vector<ExperimentPoint> points;
    for (const std::string &name : names)
        points.push_back(point(cfg, name, refs()));
    JsonRecorder json("fig04_dram_breakdown");
    const std::vector<RunResult> results = runAll(std::move(points));

    for (std::size_t i = 0; i < names.size(); ++i) {
        const RunResult &result = results[i];
        const CoreStats &core = result.core;
        std::printf("%-10s %10.1f %12.1f %10.1f | %10.1f %15.1f\n",
                    names[i].c_str(), pct(result.fracDramPtw()),
                    pct(result.fracDramReplay()),
                    pct(result.fracDramOther()),
                    pct(stats::ratio(core.leafPtDramAccesses,
                                     core.ptDramAccesses)),
                    pct(stats::ratio(core.replayDramAfterDramWalk,
                                     core.replayAfterDramWalk)));
        json.add(names[i], {{"mc.tempo", "false"}}, result);
    }
    json.write(refs());
    footer();
    return 0;
}
