/**
 * @file
 * Figure 4: fraction of total DRAM references devoted to page-table
 * walk accesses, replay accesses, and other accesses — plus the two
 * side observations quoted in Secs. 1/2.2: 96%+ of DRAM page-table
 * accesses are for leaf PTs, and 98%+ of DRAM page-table walks are
 * followed by a DRAM access for the replay.
 */

#include "bench_common.hh"

int
main()
{
    using namespace tempo;
    using namespace tempo::bench;

    header("Figure 4",
           "DRAM reference breakdown (baseline)",
           "DRAM-PTW-Access 20-40% of DRAM references; "
           "DRAM-Replay-Access comparable; leaf PTEs ~96%+ of PT DRAM "
           "traffic; 98%+ of DRAM walks followed by DRAM replays");

    std::printf("%-10s %10s %12s %10s | %10s %15s\n", "workload",
                "PTW%", "Replay%", "Other%", "leaf-PT%",
                "replay-follows%");
    for (const std::string &name : bigDataWorkloadNames()) {
        const SystemConfig cfg = SystemConfig::skylakeScaled();
        const RunResult result = runWorkload(cfg, name, refs());
        const CoreStats &core = result.core;
        std::printf("%-10s %10.1f %12.1f %10.1f | %10.1f %15.1f\n",
                    name.c_str(), pct(result.fracDramPtw()),
                    pct(result.fracDramReplay()),
                    pct(result.fracDramOther()),
                    pct(stats::ratio(core.leafPtDramAccesses,
                                     core.ptDramAccesses)),
                    pct(stats::ratio(core.replayDramAfterDramWalk,
                                     core.replayAfterDramWalk)));
    }
    footer();
    return 0;
}
