/**
 * @file
 * perf_shard: wall-clock scaling of the sharded in-point engine on
 * multiprogrammed mixes, with a built-in determinism check.
 *
 *   perf_shard [--refs N] [--apps LIST] [--max-workers N]
 *
 * Each trial runs one N-app mix (the fairness-mix app set, cycled) on
 * the sharded engine at worker counts 1, 2, 4, ... and compares every
 * run's complete statistics fingerprint — per-app finish times, every
 * per-app report entry, and the shared DRAM/MC/LLC reports — against
 * the 1-worker oracle. ANY divergence is a determinism bug and the
 * bench exits non-zero; CI runs it as a regression gate.
 *
 * Throughput is reported as simulated events/sec (both engines execute
 * the same event set at a given shard count, so events/sec is a fair
 * wall-clock proxy) plus the speedup over the 1-worker run of the SAME
 * engine. The legacy inline engine is timed as a reference row but is
 * a different timing model (see docs/MODEL.md "Sharded execution"), so
 * it participates in neither the fingerprint check nor the speedup.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "core/multi_system.hh"

namespace {

using namespace tempo;

/** FNV-1a over every statistic a mix run produces. */
struct Fingerprint {
    std::uint64_t state = 1469598103934665603ull;

    void
    u64(std::uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i) {
            state ^= (v >> (8 * i)) & 0xff;
            state *= 1099511628211ull;
        }
    }

    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    report(const stats::Report &r)
    {
        for (const auto &[name, value] : r.entries()) {
            for (const char c : name)
                u64(static_cast<unsigned char>(c));
            f64(value);
        }
    }
};

struct Trial {
    std::uint64_t fingerprint = 0;
    std::uint64_t events = 0;
    double seconds = 0;
};

Trial
runTrial(const SystemConfig &cfg, const std::vector<std::string> &names,
         std::uint64_t refs_per_app)
{
    const auto start = std::chrono::steady_clock::now();
    MultiSystem system(cfg, makeMix(names, cfg.seed));
    const MultiResult result = system.run(refs_per_app);
    const auto stop = std::chrono::steady_clock::now();

    Trial trial;
    trial.seconds = std::chrono::duration<double>(stop - start).count();
    trial.events = system.machine().eq.executed();

    Fingerprint fp;
    fp.u64(result.runtime);
    for (std::size_t i = 0; i < system.numCores(); ++i) {
        fp.u64(result.appFinish[i]);
        stats::Report app_report;
        result.appStats[i].report(app_report);
        fp.report(app_report);
        if (cfg.shards > 0)
            trial.events += system.core(i).eq().executed();
    }
    stats::Report shared;
    system.machine().mc.report(shared);
    system.machine().dram.report(shared);
    fp.u64(system.machine().llc.cache().hits());
    fp.u64(system.machine().llc.cache().misses());
    fp.report(shared);
    trial.fingerprint = fp.state;
    return trial;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t refs_per_app = 12000;
    std::vector<unsigned> app_counts = {8, 32};
    unsigned max_workers = 8;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--refs") == 0 && i + 1 < argc) {
            refs_per_app = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--apps") == 0 && i + 1 < argc) {
            app_counts.clear();
            for (const char *p = argv[++i]; *p;) {
                app_counts.push_back(
                    static_cast<unsigned>(std::strtoul(p, nullptr, 10)));
                while (*p && *p != ',')
                    ++p;
                if (*p == ',')
                    ++p;
            }
        } else if (std::strcmp(argv[i], "--max-workers") == 0
                   && i + 1 < argc) {
            max_workers =
                static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
        } else {
            std::fprintf(stderr,
                         "usage: perf_shard [--refs N] [--apps L1,L2] "
                         "[--max-workers N]\n");
            return 2;
        }
    }
    if (refs_per_app == 0 || app_counts.empty() || max_workers == 0) {
        std::fprintf(stderr, "error: bad arguments\n");
        return 2;
    }

    const std::vector<std::string> pool = {
        "xsbench",     "mcf",       "lbm.medium", "astar.small",
        "canneal",     "milc.medium", "gcc.small",  "hmmer.small",
    };

    std::vector<unsigned> worker_counts;
    for (unsigned w = 1; w <= max_workers; w *= 2)
        worker_counts.push_back(w);

    bool diverged = false;
    for (const unsigned napps : app_counts) {
        std::vector<std::string> names;
        for (unsigned i = 0; i < napps; ++i)
            names.push_back(pool[i % pool.size()]);
        const SystemConfig base =
            bench::multiprogMachine(SystemConfig::skylakeScaled(), napps);

        std::printf("%u apps x %llu refs\n", napps,
                    static_cast<unsigned long long>(refs_per_app));
        std::printf("%-10s %12s %14s %9s\n", "engine", "events",
                    "events/sec", "speedup");

        // Reference row: the legacy inline engine (different timing
        // model — informational only, excluded from the checks).
        const Trial inline_trial = runTrial(base, names, refs_per_app);
        std::printf("%-10s %12llu %14.0f %9s\n", "inline",
                    static_cast<unsigned long long>(inline_trial.events),
                    static_cast<double>(inline_trial.events)
                        / inline_trial.seconds,
                    "-");

        double oracle_rate = 0;
        std::uint64_t oracle_fp = 0;
        for (const unsigned workers : worker_counts) {
            SystemConfig cfg = base;
            cfg.withShards(workers);
            const Trial trial = runTrial(cfg, names, refs_per_app);
            const double rate =
                static_cast<double>(trial.events) / trial.seconds;
            if (workers == 1) {
                oracle_rate = rate;
                oracle_fp = trial.fingerprint;
            } else if (trial.fingerprint != oracle_fp) {
                std::fprintf(
                    stderr,
                    "FAIL: %u apps, %u workers: stats fingerprint "
                    "%016llx != 1-worker oracle %016llx\n",
                    napps, workers,
                    static_cast<unsigned long long>(trial.fingerprint),
                    static_cast<unsigned long long>(oracle_fp));
                diverged = true;
            }
            char label[32];
            std::snprintf(label, sizeof(label), "shards=%u", workers);
            std::printf("%-10s %12llu %14.0f %8.2fx\n", label,
                        static_cast<unsigned long long>(trial.events),
                        rate, rate / oracle_rate);
        }
        std::printf("\n");
    }
    if (diverged) {
        std::fprintf(stderr,
                     "FAIL: sharded runs diverged across worker "
                     "counts\n");
        return 1;
    }
    std::printf("all shard counts byte-identical\n");
    return 0;
}
